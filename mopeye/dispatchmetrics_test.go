package mopeye

import "testing"

// TestDispatchBenchMetricsArm floods with the observability registry
// armed and continuously scraped — the `paperbench -exp dispatch
// -metrics` arm — and asserts the flood is unaffected.
func TestDispatchBenchMetricsArm(t *testing.T) {
	o := DispatchBenchOptions{
		WorkerCounts:  []int{2},
		Apps:          2,
		ConnsPerApp:   2,
		EchoesPerConn: 5,
		PayloadBytes:  256,
		UDPPerConn:    2,
		Metrics:       true,
	}
	res, err := RunDispatchBench(o)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Errors != 0 {
		t.Fatalf("flood errors with metrics armed: %d", row.Errors)
	}
	if row.Packets == 0 || row.PacketsPerSec <= 0 {
		t.Fatalf("no packets relayed: %+v", row)
	}
}

// TestDefaultBenchOptions sanity-checks the canonical CLI presets.
func TestDefaultBenchOptions(t *testing.T) {
	d := DefaultDispatchBenchOptions()
	if len(d.WorkerCounts) == 0 || d.Apps <= 0 || d.ConnsPerApp <= 0 ||
		d.EchoesPerConn <= 0 || d.PayloadBytes <= 0 {
		t.Fatalf("dispatch preset not runnable: %+v", d)
	}
	i := DefaultIngestBenchOptions()
	if i.Devices <= 0 || i.BatchesPerDevice <= 0 || i.RecordsPerBatch <= 0 ||
		i.ServerShards <= 0 {
		t.Fatalf("ingest preset not runnable: %+v", i)
	}
}
