package mopeye

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/crowd"
)

// flakyHandler is the fault-injection harness: it fronts a collector
// server and misbehaves per a script, one entry consumed per upload
// request (exhausted script = healthy). Modes:
//
//	"503"  — refuse before the server sees the batch (clean retry)
//	"dup"  — let the server commit the batch, then answer 503 anyway,
//	         so the client's retry is a duplicate delivery (the dedup
//	         path: commit-then-crash)
//	"hang" — stall past the client's timeout, then refuse
//	"ok"   — pass through
//
// Non-upload requests always pass through.
type flakyHandler struct {
	inner  http.Handler
	mu     sync.Mutex
	script []string
	served int
}

func (f *flakyHandler) next() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.served >= len(f.script) {
		return "ok"
	}
	op := f.script[f.served]
	f.served++
	return op
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || r.URL.Path != "/v1/upload" {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch f.next() {
	case "503":
		http.Error(w, "injected unavailability", http.StatusServiceUnavailable)
	case "dup":
		f.inner.ServeHTTP(httptest.NewRecorder(), r)
		http.Error(w, "injected post-commit failure", http.StatusServiceUnavailable)
	case "hang":
		time.Sleep(150 * time.Millisecond)
		http.Error(w, "injected stall", http.StatusServiceUnavailable)
	default:
		f.inner.ServeHTTP(w, r)
	}
}

// flakyCollectord builds collector server + flaky front + transport
// with fast test backoff.
func flakyCollectord(t *testing.T, script []string, o HTTPTransportOptions) (*crowd.Server, *flakyHandler, *HTTPTransport) {
	t.Helper()
	srv, err := crowd.NewServer(crowd.ServerOptions{Token: o.Token})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyHandler{inner: srv, script: script}
	ts := httptest.NewServer(flaky)
	t.Cleanup(ts.Close)
	if o.BackoffBase == 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 4 * time.Millisecond
	}
	tr := NewHTTPTransport(ts.URL, o)
	t.Cleanup(func() { tr.Close() })
	return srv, flaky, tr
}

func uploadRecs(n int, app string) []Measurement {
	out := make([]Measurement, n)
	for i := range out {
		out[i] = sinkRec(app, float64(i+1))
	}
	return out
}

// Retry converges: a batch that meets scripted 503s and a timeout is
// still delivered exactly once.
func TestHTTPTransportRetryConverges(t *testing.T) {
	srv, _, tr := flakyCollectord(t, []string{"503", "hang", "503"}, HTTPTransportOptions{
		Client: &http.Client{Timeout: 30 * time.Millisecond},
	})
	b := Batch{Device: "p1", Key: "p1/n/1", Seq: 1, Records: uploadRecs(3, "com.app")}
	if err := tr.Upload(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := tr.Stats()
	if st.Uploaded != 1 || st.Failed != 0 || st.Retried < 3 {
		t.Errorf("transport stats: %+v", st)
	}
	ss := srv.Stats()
	if ss.Batches != 1 || ss.Records != 3 || ss.Duplicates != 0 {
		t.Errorf("server stats: %+v", ss)
	}
}

// Commit-then-fail redelivery is absorbed by server dedup: records
// land exactly once even though the batch was delivered twice.
func TestHTTPTransportDedupExactlyOnce(t *testing.T) {
	srv, _, tr := flakyCollectord(t, []string{"dup", "ok", "dup"}, HTTPTransportOptions{})
	for seq := 1; seq <= 3; seq++ {
		b := Batch{Device: "p1", Key: "p1/n/" + strings.Repeat("i", seq), Seq: seq,
			Records: uploadRecs(2, "com.app")}
		if err := tr.Upload(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ss := srv.Stats()
	if ss.Batches != 3 || ss.Records != 6 {
		t.Errorf("server stats: %+v (want 3 batches, 6 records)", ss)
	}
	if ss.Duplicates != 2 {
		t.Errorf("duplicates absorbed: %d, want 2", ss.Duplicates)
	}
}

// A terminal rejection (bad token) fails fast: no retry storm, error
// surfaced, later Err() visible.
func TestHTTPTransportTerminalError(t *testing.T) {
	_, flaky, tr := flakyCollectord(t, nil, HTTPTransportOptions{Token: "wrong"})
	// Server without token vs transport with one is fine; flip it:
	// build a server requiring a token the transport doesn't send.
	srv, err := crowd.NewServer(crowd.ServerOptions{Token: "secret"})
	if err != nil {
		t.Fatal(err)
	}
	flaky.inner = srv

	b := Batch{Device: "p1", Key: "k", Seq: 1, Records: uploadRecs(1, "a")}
	if err := tr.Upload(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err == nil {
		t.Fatal("terminal error not surfaced by Close")
	}
	st := tr.Stats()
	if st.Failed != 1 || st.Retried != 0 || st.Uploaded != 0 {
		t.Errorf("stats after 401: %+v (want 1 failed, 0 retries)", st)
	}
	if tr.Err() == nil || !strings.Contains(tr.Err().Error(), "401") {
		t.Errorf("Err(): %v", tr.Err())
	}
}

// Upload never blocks: with the queue full (uploader wedged on a slow
// server) extra batches are dropped and counted, and the caller
// returns immediately.
func TestHTTPTransportBoundedQueueDrops(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	defer slow.Close()
	tr := NewHTTPTransport(slow.URL, HTTPTransportOptions{QueueSize: 2})
	defer func() {
		close(release)
		tr.Close()
	}()

	start := time.Now()
	for i := 0; i < 10; i++ {
		b := Batch{Device: "p1", Key: strings.Repeat("k", i+1), Seq: i + 1,
			Records: uploadRecs(1, "a")}
		if err := tr.Upload(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("Upload blocked for %v", elapsed)
	}
	if st := tr.Stats(); st.Dropped == 0 {
		t.Error("no drops counted with a wedged uploader and a full queue")
	}
}

// After Close, Upload refuses instead of panicking, and Close is
// idempotent.
func TestHTTPTransportClosed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	tr := NewHTTPTransport(srv.URL, HTTPTransportOptions{})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	err := tr.Upload(context.Background(), Batch{Device: "d", Key: "k"})
	if err != ErrTransportClosed {
		t.Errorf("Upload after Close: %v", err)
	}
}

// FuncTransport is the in-process compat shim: a Collector configured
// with it hands every uploaded batch's records to the bare function,
// in upload order, identical to the collector's own mirror.
func TestFuncTransportCompat(t *testing.T) {
	var got []Measurement
	c := NewCollector(CollectorOptions{
		BatchSize: 2,
		Device:    "compat",
		Transport: FuncTransport(func(recs []Measurement) error {
			got = append(got, recs...)
			return nil
		}),
	})
	for i := 0; i < 5; i++ {
		if err := c.Accept(sinkRec("com.app", float64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	mirror := c.Records()
	if len(got) != 5 || len(mirror) != 5 {
		t.Fatalf("func transport got %d records, mirror %d", len(got), len(mirror))
	}
	for i := range got {
		if got[i] != mirror[i] {
			t.Errorf("record %d diverges from mirror", i)
		}
	}
	if got[0].Device != "compat" {
		t.Errorf("unstamped record reached the transport: %+v", got[0])
	}
}

// Collector batches ship with unique, monotonically-sequenced
// idempotency keys; an empty flush consumes neither a key nor a
// transport call.
func TestCollectorBatchKeys(t *testing.T) {
	var batches []Batch
	c := NewCollector(CollectorOptions{
		BatchSize: 2,
		Device:    "keys",
		Transport: TransportFunc(func(_ context.Context, b Batch) error {
			batches = append(batches, b)
			return nil
		}),
	})
	for i := 0; i < 4; i++ {
		c.Accept(sinkRec("a", 1))
	}
	c.Flush() // empty: pending drained by the size policy already
	c.Accept(sinkRec("a", 1))
	c.Close()

	if len(batches) != 3 {
		t.Fatalf("batches shipped: %d, want 3", len(batches))
	}
	seen := map[string]bool{}
	for i, b := range batches {
		if b.Seq != i+1 {
			t.Errorf("batch %d has seq %d", i, b.Seq)
		}
		if b.Device != "keys" {
			t.Errorf("batch %d device %q", i, b.Device)
		}
		if seen[b.Key] {
			t.Errorf("key %q reused", b.Key)
		}
		seen[b.Key] = true
	}
	// Two collectors sharing a device stamp never collide on keys.
	c2 := NewCollector(CollectorOptions{BatchSize: 2, Device: "keys",
		Transport: TransportFunc(func(_ context.Context, b Batch) error {
			if seen[b.Key] {
				t.Errorf("cross-collector key collision: %q", b.Key)
			}
			return nil
		})})
	c2.Accept(sinkRec("a", 1))
	c2.Close()
}
