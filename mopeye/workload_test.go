package mopeye

import (
	"context"
	"testing"
	"time"
)

// TestWorkloadGeneratorsProduceMeasurements runs every canned
// generator against a fast echo server and asserts it actually drives
// traffic: TCP measurements accumulate, and generators visiting a
// domain site also produce DNS measurements.
func TestWorkloadGeneratorsProduceMeasurements(t *testing.T) {
	for _, name := range WorkloadNames() {
		t.Run(name, func(t *testing.T) {
			p, err := New(Options{
				Servers: []Server{{Domain: "site.example.com", RTTMillis: 4}},
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer p.Close()
			p.InstallApp(10001, "com.example.app")
			wl, err := WorkloadByName(name, WorkloadOptions{
				Sites:    []string{"site.example.com:443"},
				Duration: 1200 * time.Millisecond,
				Seed:     7,
			})
			if err != nil {
				t.Fatalf("WorkloadByName: %v", err)
			}
			if err := wl(context.Background(), p); err != nil {
				t.Fatalf("workload: %v", err)
			}
			tcp := len(p.TCPMeasurements())
			if tcp < 2 {
				t.Fatalf("workload %q produced %d TCP measurements, want >= 2", name, tcp)
			}
			if dns := len(p.DNSMeasurements()); dns < 1 {
				t.Fatalf("workload %q produced no DNS measurements for a domain site", name)
			}
			// The traffic must be attributed to the installed app.
			for _, m := range p.TCPMeasurements() {
				if m.App != "com.example.app" {
					t.Fatalf("measurement attributed to %q, want com.example.app", m.App)
				}
			}
		})
	}
}

// TestWorkloadByNameUnknown pins the registry error path.
func TestWorkloadByNameUnknown(t *testing.T) {
	if _, err := WorkloadByName("doomscroll", WorkloadOptions{Sites: []string{"a:1"}}); err == nil {
		t.Fatal("WorkloadByName accepted an unknown name")
	}
}

// TestWorkloadRespectsContext pins that cancellation stops a
// generator promptly and surfaces as the context error.
func TestWorkloadRespectsContext(t *testing.T) {
	p, err := New(Options{
		Servers: []Server{{Domain: "site.example.com", RTTMillis: 4}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.InstallApp(10001, "com.example.app")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	wl, err := WorkloadByName("web", WorkloadOptions{
		Sites:    []string{"site.example.com:443"},
		Duration: time.Hour, // the deadline must come from ctx, not this
	})
	if err != nil {
		t.Fatalf("WorkloadByName: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- wl(ctx, p) }()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("workload returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("workload did not stop after cancellation")
	}
}
