package mopeye

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// This file is the worker-sweep benchmark behind BenchmarkEngineParallel
// and `paperbench -exp parallel`: a multi-app packet flood — a workload
// the paper never exercises, because a phone relays one user — run at
// several engine worker counts. Following the WLCG benchmarking-
// workflows idea (PAPERS.md), the benchmark doubles as the accounting
// that proves (or disproves) the sharded engine's speedup: the same
// run reports throughput and the engine's own counters.

// ParallelBenchOptions configures the multi-app flood.
type ParallelBenchOptions struct {
	// WorkerCounts is the sweep, e.g. [1, 2, 4].
	WorkerCounts []int
	// Apps is the number of simulated apps, each with its own server.
	Apps int
	// ConnsPerApp is the number of concurrent connections per app.
	ConnsPerApp int
	// EchoesPerConn is the number of request/response rounds each
	// connection performs.
	EchoesPerConn int
	// PayloadBytes is the request size per echo.
	PayloadBytes int
	// RTTMillis is the simulated path RTT to every server; kept small
	// so the engine, not the wire, is the bottleneck.
	RTTMillis float64
	// ReadBatch sets the engine's burst size for the run: 0 keeps the
	// engine default, 1 disables batching.
	ReadBatch int
	// ReadBatchAuto runs the AIMD burst governor (ReadBatch becomes
	// the ceiling) instead of a pinned burst size.
	ReadBatchAuto bool
	// SharedDispatcher runs the legacy shared-selector + dispatcher
	// topology instead of the default per-worker selectors — the
	// sharded-selector ablation's baseline arm.
	SharedDispatcher bool
}

// DefaultParallelBenchOptions returns a flood heavy enough that worker
// scaling is visible on a multi-core host but still quick to run.
func DefaultParallelBenchOptions() ParallelBenchOptions {
	return ParallelBenchOptions{
		WorkerCounts:  []int{1, 2, 4},
		Apps:          4,
		ConnsPerApp:   8,
		EchoesPerConn: 40,
		PayloadBytes:  1200,
		RTTMillis:     1,
	}
}

// ParallelBenchRow is one worker count's result.
type ParallelBenchRow struct {
	Workers       int
	Duration      time.Duration
	Packets       int // tunnel packets in both directions
	PacketsPerSec float64
	BytesRelayed  int64
	Established   int
	Errors        int
}

// ParallelBenchResult is the full sweep.
type ParallelBenchResult struct {
	Options ParallelBenchOptions
	Rows    []ParallelBenchRow
}

// Speedup returns row[i] throughput relative to the Workers=1 row
// (0 when absent).
func (r *ParallelBenchResult) Speedup(workers int) float64 {
	var base, at float64
	for _, row := range r.Rows {
		if row.Workers == 1 {
			base = row.PacketsPerSec
		}
		if row.Workers == workers {
			at = row.PacketsPerSec
		}
	}
	if base == 0 {
		return 0
	}
	return at / base
}

// String renders the sweep as a table.
func (r *ParallelBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %12s %8s\n",
		"workers", "duration", "packets", "pkts/sec", "MB relayed", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %10s %10d %12.0f %12.2f %7.2fx\n",
			row.Workers, row.Duration.Round(time.Millisecond), row.Packets,
			row.PacketsPerSec, float64(row.BytesRelayed)/1e6, r.Speedup(row.Workers))
	}
	return b.String()
}

// RunParallelBench floods a fresh phone once per worker count and
// reports relay throughput for each.
func RunParallelBench(o ParallelBenchOptions) (*ParallelBenchResult, error) {
	if len(o.WorkerCounts) == 0 {
		o.WorkerCounts = []int{1, 2, 4}
	}
	res := &ParallelBenchResult{Options: o}
	for _, w := range o.WorkerCounts {
		row, err := runParallelOnce(o, w)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runParallelOnce(o ParallelBenchOptions, workers int) (ParallelBenchRow, error) {
	servers := make([]Server, o.Apps)
	for i := range servers {
		servers[i] = Server{
			Domain:    fmt.Sprintf("flood%d.example", i),
			Addr:      fmt.Sprintf("203.0.113.%d:80", 10+i),
			RTTMillis: o.RTTMillis,
		}
	}
	phone, err := New(Options{
		Servers:          servers,
		Workers:          workers,
		ReadBatch:        o.ReadBatch,
		ReadBatchAuto:    o.ReadBatchAuto,
		SharedDispatcher: o.SharedDispatcher,
	})
	if err != nil {
		return ParallelBenchRow{}, err
	}
	defer phone.Close()
	for i := 0; i < o.Apps; i++ {
		phone.InstallApp(20001+i, fmt.Sprintf("flood.app%d", i))
	}

	payload := make([]byte, o.PayloadBytes)
	var errs sync.Map
	var errCount int
	start := time.Now()
	var wg sync.WaitGroup
	for a := 0; a < o.Apps; a++ {
		for c := 0; c < o.ConnsPerApp; c++ {
			wg.Add(1)
			go func(a, c int) {
				defer wg.Done()
				conn, err := phone.Connect(20001+a, servers[a].Addr)
				if err != nil {
					errs.Store(fmt.Sprintf("%d/%d", a, c), err)
					return
				}
				defer conn.Close()
				buf := make([]byte, len(payload))
				for i := 0; i < o.EchoesPerConn; i++ {
					if _, err := conn.Write(payload); err != nil {
						errs.Store(fmt.Sprintf("%d/%d", a, c), err)
						return
					}
					if err := conn.ReadFull(buf); err != nil {
						errs.Store(fmt.Sprintf("%d/%d", a, c), err)
						return
					}
				}
			}(a, c)
		}
	}
	wg.Wait()
	dur := time.Since(start)
	errs.Range(func(_, _ any) bool { errCount++; return true })

	st := phone.EngineStats()
	pkts := st.PacketsFromTun + st.PacketsToTun
	return ParallelBenchRow{
		Workers:       workers,
		Duration:      dur,
		Packets:       pkts,
		PacketsPerSec: float64(pkts) / dur.Seconds(),
		BytesRelayed:  st.BytesUp + st.BytesDown,
		Established:   st.Established,
		Errors:        errCount,
	}, nil
}
