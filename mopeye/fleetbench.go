package mopeye

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/crowd"
)

// This file is the fleet fan-in benchmark behind `paperbench -exp
// fleet` and BenchmarkFleetFanIn: N loopback phones run the same echo
// workload while their Collectors upload into one destination, once
// in-process (Transport nil — PR 4's ceiling, the number HTTP overhead
// is judged against) and once over the wire (HTTPTransport → a local
// crowd.Server). The interesting deltas are wall-clock (what the HTTP
// hop costs the phones) and the end-of-run invariant that the server
// holds exactly the fleet's records.

// FleetBenchOptions configures the fan-in benchmark.
type FleetBenchOptions struct {
	// Phones is the fleet size. Default 8.
	Phones int
	// ConnsPerPhone / EchoesPerConn / PayloadBytes shape each phone's
	// workload; each connection yields one RTT record, so connections
	// (not echoes) drive the upload volume. Defaults 12 / 10 / 600.
	ConnsPerPhone int
	EchoesPerConn int
	PayloadBytes  int
	// BatchSize is the collectors' upload batch size. Default 4 —
	// small enough that the wire is exercised repeatedly per phone.
	BatchSize int
	// Workers is the per-phone engine worker count. Default 1.
	Workers int
	// Modes selects which rows run: "inproc", "http". Default both.
	Modes []string
}

// DefaultFleetBenchOptions returns the standard fan-in workload.
func DefaultFleetBenchOptions() FleetBenchOptions {
	return FleetBenchOptions{
		Phones:        8,
		ConnsPerPhone: 12,
		EchoesPerConn: 10,
		PayloadBytes:  600,
		BatchSize:     4,
		Workers:       1,
		Modes:         []string{"inproc", "http"},
	}
}

// FleetBenchRow is one mode's result.
type FleetBenchRow struct {
	Mode          string
	Phones        int
	Duration      time.Duration
	Records       int // records the fleet uploaded (local mirrors)
	RecordsPerSec float64
	Uploads       int // batches shipped by the collectors
	// ServerRecords/ServerBatches/Duplicates describe the collector
	// server's view (http mode only; zero otherwise).
	ServerRecords int
	ServerBatches int
	Duplicates    int
}

// FleetBenchResult is the full run.
type FleetBenchResult struct {
	Options FleetBenchOptions
	Rows    []FleetBenchRow
}

// Row returns the named mode's row (nil when absent).
func (r *FleetBenchResult) Row(mode string) *FleetBenchRow {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the run as a table.
func (r *FleetBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %7s %10s %9s %9s %12s %10s %9s\n",
		"mode", "phones", "duration", "records", "uploads", "recs/sec", "srv-recs", "srv-dups")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %7d %10s %9d %9d %12.0f %10d %9d\n",
			row.Mode, row.Phones, row.Duration.Round(time.Millisecond), row.Records,
			row.Uploads, row.RecordsPerSec, row.ServerRecords, row.Duplicates)
	}
	return b.String()
}

// RunFleetBench runs the fan-in workload once per mode.
func RunFleetBench(o FleetBenchOptions) (*FleetBenchResult, error) {
	if o.Phones <= 0 {
		o.Phones = 8
	}
	if o.ConnsPerPhone <= 0 {
		o.ConnsPerPhone = 4
	}
	if o.EchoesPerConn <= 0 {
		o.EchoesPerConn = 30
	}
	if o.PayloadBytes <= 0 {
		o.PayloadBytes = 600
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 8
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if len(o.Modes) == 0 {
		o.Modes = []string{"inproc", "http"}
	}
	res := &FleetBenchResult{Options: o}
	for _, mode := range o.Modes {
		row, err := runFleetOnce(o, mode)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// fleetBenchRoster builds the N-phone roster: loopback phones, one
// server and app each, distinct seeds, the shared echo workload.
func fleetBenchRoster(o FleetBenchOptions) []FleetPhone {
	phones := make([]FleetPhone, o.Phones)
	payload := make([]byte, o.PayloadBytes)
	for i := range phones {
		addr := fmt.Sprintf("203.0.113.%d:80", 30+i)
		uid := 30001 + i
		phones[i] = FleetPhone{
			Device: fmt.Sprintf("fleet-%03d", i+1),
			Options: Options{
				Servers:  []Server{{Domain: fmt.Sprintf("fleet%d.example", i), Addr: addr}},
				Workers:  o.Workers,
				Loopback: true,
				Seed:     int64(1000 + i),
			},
			Apps: map[int]string{uid: fmt.Sprintf("fleet.app%d", i)},
			Workload: func(ctx context.Context, p *Phone) error {
				buf := make([]byte, len(payload))
				for c := 0; c < o.ConnsPerPhone; c++ {
					conn, err := p.Connect(uid, addr)
					if err != nil {
						return err
					}
					for e := 0; e < o.EchoesPerConn; e++ {
						if _, err := conn.Write(payload); err != nil {
							conn.Close()
							return err
						}
						if err := conn.ReadFull(buf); err != nil {
							conn.Close()
							return err
						}
					}
					conn.Close()
				}
				return nil
			},
		}
	}
	return phones
}

// runFleetOnce runs one mode and checks the end-of-run invariants.
func runFleetOnce(o FleetBenchOptions, mode string) (FleetBenchRow, error) {
	fo := FleetOptions{
		Phones:    fleetBenchRoster(o),
		Collector: CollectorOptions{BatchSize: o.BatchSize},
	}
	var srv *crowd.Server
	var ts *httptest.Server
	var transport *HTTPTransport
	switch mode {
	case "inproc":
	case "http":
		var err error
		srv, err = crowd.NewServer(crowd.ServerOptions{})
		if err != nil {
			return FleetBenchRow{}, err
		}
		ts = httptest.NewServer(srv)
		defer ts.Close()
		transport = NewHTTPTransport(ts.URL, HTTPTransportOptions{QueueSize: 4 * o.Phones})
		fo.Transport = transport
	default:
		return FleetBenchRow{}, fmt.Errorf("mopeye: unknown fleet bench mode %q", mode)
	}

	fleet, err := NewFleet(fo)
	if err != nil {
		return FleetBenchRow{}, err
	}
	start := time.Now()
	if err := fleet.Run(context.Background()); err != nil {
		return FleetBenchRow{}, err
	}
	if transport != nil {
		// The timed region includes draining the upload queue: the
		// fan-in is not done until the collector has everything.
		if err := transport.Close(); err != nil {
			return FleetBenchRow{}, err
		}
	}
	dur := time.Since(start)

	st := fleet.Stats()
	row := FleetBenchRow{
		Mode:          mode,
		Phones:        o.Phones,
		Duration:      dur,
		Records:       st.Records,
		RecordsPerSec: float64(st.Records) / dur.Seconds(),
		Uploads:       st.Uploads,
	}
	if srv != nil {
		ss := srv.Stats()
		row.ServerRecords = ss.Records
		row.ServerBatches = ss.Batches
		row.Duplicates = ss.Duplicates
		if ts := transport.Stats(); ts.Dropped > 0 || ts.Failed > 0 {
			return row, fmt.Errorf("mopeye: fleet bench lost batches (dropped %d, failed %d)", ts.Dropped, ts.Failed)
		}
		if row.ServerRecords != row.Records {
			return row, fmt.Errorf("mopeye: server holds %d records, fleet uploaded %d", row.ServerRecords, row.Records)
		}
	}
	return row, nil
}
