package mopeye

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"
)

// table1Totals projects the deterministic columns out of a Table 1 run:
// the Total row. The delay buckets are real-time measurements and move
// with host load, but the totals are packet counts fixed by the
// workload — every request, response segment, ACK, and FIN the relay
// emits is the same no matter how the engine core is shaped.
func table1Totals(r *Table1Result) string {
	return fmt.Sprintf("directWrite=%d queueWrite=%d oldPut=%d newPut=%d",
		r.DirectWrite.Total, r.QueueWrite.Total, r.OldPut.Total, r.NewPut.Total)
}

// TestGoldenTable1DeterministicAcrossWorkers is the golden determinism
// guard: the full Table 1 ablation scenario (three engine runs across
// the write schemes, browsing workload, Android write-cost model) run
// at Workers=1 (the paper-faithful MainWorker) and at Workers=4 (the
// sharded pipeline with batched reads, per-worker SPSC rings, and
// batched writes) must produce byte-identical deterministic columns.
// Any future dispatch or queue refactor that drops, duplicates, or
// reorders per-flow packets shifts these totals and fails here.
func TestGoldenTable1DeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int, sharedDispatcher bool) string {
		t.Helper()
		o := DefaultTable1Options()
		o.Pages = 4
		o.ConnsPerPage = 6
		o.Workers = workers
		o.SharedDispatcher = sharedDispatcher
		res, err := RunTable1(o)
		if err != nil {
			t.Fatalf("table1 at workers=%d shared=%v: %v", workers, sharedDispatcher, err)
		}
		return table1Totals(res)
	}

	single := run(1, false)
	sharded := run(4, false)
	if single != sharded {
		t.Errorf("Table 1 deterministic columns diverge across engine cores:\n workers=1: %s\n workers=4: %s",
			single, sharded)
	}
	// Third arm: the legacy shared-selector + dispatcher topology must
	// relay the exact same packets as both the per-worker-selector
	// pipeline and the single MainWorker.
	if legacy := run(4, true); legacy != single {
		t.Errorf("Table 1 deterministic columns diverge on the shared-dispatcher path:\n workers=1:          %s\n workers=4 (shared): %s",
			single, legacy)
	}

	// The guard is only as good as the workload's own determinism: a
	// second single-worker run must reproduce the first bit for bit.
	if again := run(1, false); again != single {
		t.Errorf("Table 1 totals not reproducible at workers=1:\n first:  %s\n second: %s", single, again)
	}
}

// measurementTotals projects the deterministic columns out of a
// measurement set: per-(kind, app, dst) record counts. RTT values move
// with host scheduling, but which connections were measured and
// attributed to whom is fixed by the workload, whatever the engine
// core shape and whichever view — snapshot or stream — reported them.
func measurementTotals(recs []Measurement) string {
	counts := make(map[string]int)
	for _, r := range recs {
		counts[fmt.Sprintf("%s %s %s", r.Kind, r.App, r.Dst)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, counts[k])
	}
	return b.String()
}

// TestGoldenStreamMatchesSnapshot is the streaming half of the golden
// determinism guard: a fixed workload run at Workers=1 (the
// paper-faithful MainWorker) and Workers=4 (the sharded batched
// pipeline) must produce identical measurement totals, and within each
// run the drained Subscribe stream must be record-for-record identical
// to the Measurements() snapshot — the push pipeline may never drop,
// duplicate, or reorder what the pull view reports.
func TestGoldenStreamMatchesSnapshot(t *testing.T) {
	run := func(workers int) string {
		t.Helper()
		p, err := New(Options{
			Servers: []Server{
				{Domain: "golden-a.example", RTTMillis: 8},
				{Domain: "golden-b.example", RTTMillis: 16, Behaviour: Chatty},
			},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.InstallApp(10001, "golden.app.one")
		p.InstallApp(10002, "golden.app.two")

		// Subscribe registers synchronously: the tap observes every
		// measurement the workload below produces.
		tap := p.Subscribe(context.Background(), Filter{})
		streamed := make(chan []Measurement, 1)
		go func() {
			var got []Measurement
			for m := range tap {
				got = append(got, m)
			}
			streamed <- got
		}()

		for i := 0; i < 4; i++ {
			for uid, dst := range map[int]string{10001: "golden-a.example:443", 10002: "golden-b.example:443"} {
				conn, err := p.Connect(uid, dst)
				if err != nil {
					t.Fatal(err)
				}
				conn.Close()
			}
		}
		// 8 TCP records plus one DNS record per domain's first resolution.
		want := 10
		for deadline := time.Now().Add(5 * time.Second); len(p.Measurements()) < want &&
			time.Now().Before(deadline); {
			time.Sleep(time.Millisecond)
		}
		snap := p.Measurements()
		p.Close()
		stream := <-streamed

		if len(stream) != len(snap) {
			t.Fatalf("workers=%d: streamed %d records, snapshot has %d",
				workers, len(stream), len(snap))
		}
		for i := range snap {
			if stream[i] != snap[i] {
				t.Fatalf("workers=%d record %d:\n stream   %+v\n snapshot %+v",
					workers, i, stream[i], snap[i])
			}
		}
		if d := p.StreamDrops(); d != 0 {
			t.Fatalf("workers=%d: stream dropped %d records", workers, d)
		}
		return measurementTotals(snap)
	}

	single := run(1)
	sharded := run(4)
	if single != sharded {
		t.Errorf("measurement totals diverge across engine cores:\nworkers=1:\n%sworkers=4:\n%s",
			single, sharded)
	}
	if again := run(1); again != single {
		t.Errorf("measurement totals not reproducible at workers=1:\n first:\n%s second:\n%s",
			single, again)
	}
}
