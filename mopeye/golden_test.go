package mopeye

import (
	"fmt"
	"testing"
)

// table1Totals projects the deterministic columns out of a Table 1 run:
// the Total row. The delay buckets are real-time measurements and move
// with host load, but the totals are packet counts fixed by the
// workload — every request, response segment, ACK, and FIN the relay
// emits is the same no matter how the engine core is shaped.
func table1Totals(r *Table1Result) string {
	return fmt.Sprintf("directWrite=%d queueWrite=%d oldPut=%d newPut=%d",
		r.DirectWrite.Total, r.QueueWrite.Total, r.OldPut.Total, r.NewPut.Total)
}

// TestGoldenTable1DeterministicAcrossWorkers is the golden determinism
// guard: the full Table 1 ablation scenario (three engine runs across
// the write schemes, browsing workload, Android write-cost model) run
// at Workers=1 (the paper-faithful MainWorker) and at Workers=4 (the
// sharded pipeline with batched reads, per-worker SPSC rings, and
// batched writes) must produce byte-identical deterministic columns.
// Any future dispatch or queue refactor that drops, duplicates, or
// reorders per-flow packets shifts these totals and fails here.
func TestGoldenTable1DeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		t.Helper()
		o := DefaultTable1Options()
		o.Pages = 4
		o.ConnsPerPage = 6
		o.Workers = workers
		res, err := RunTable1(o)
		if err != nil {
			t.Fatalf("table1 at workers=%d: %v", workers, err)
		}
		return table1Totals(res)
	}

	single := run(1)
	sharded := run(4)
	if single != sharded {
		t.Errorf("Table 1 deterministic columns diverge across engine cores:\n workers=1: %s\n workers=4: %s",
			single, sharded)
	}

	// The guard is only as good as the workload's own determinism: a
	// second single-worker run must reproduce the first bit for bit.
	if again := run(1); again != single {
		t.Errorf("Table 1 totals not reproducible at workers=1:\n first:  %s\n second: %s", single, again)
	}
}
