// Package mopeye is the public API of the MopEye reproduction: a
// VpnService-style opportunistic per-app network performance monitor
// (Wu et al., USENIX ATC 2017) running against a simulated phone and
// network.
//
// The central type is Phone: a simulated Android device with the
// MopEye engine attached to its TUN interface. Apps you connect
// through the phone are relayed to simulated servers by MopEye's
// user-space TCP stack, and every connection yields one opportunistic
// RTT measurement attributed to the owning app — with zero probe
// traffic, exactly as the paper's system works.
//
//	phone, _ := mopeye.New(mopeye.Options{
//		Servers: []mopeye.Server{{Domain: "api.example.com", RTTMillis: 40}},
//	})
//	defer phone.Close()
//	phone.InstallApp(10001, "com.example.app")
//	conn, _ := phone.Connect(10001, "api.example.com:443")
//	conn.Write([]byte("hello"))
//	conn.Close()
//	for _, m := range phone.Measurements() {
//		fmt.Printf("%s -> %s: %v\n", m.App, m.Dst, m.RTT)
//	}
//
// Because MopEye monitors continuously, the API is push-first: Phone.Subscribe
// streams measurements live as a context-cancellable iterator, and Phone.Attach
// drives a Sink — CSVSink, JSONLSink, or the crowdsourcing Collector, whose
// uploads feed the §4.2 analysis pipeline directly — for the engine's lifetime
// (stream.go, sink.go). The snapshot accessors above remain as pull-style views
// over the same pipeline.
//
// The Collector's upload side is a pluggable Transport (transport.go):
// HTTPTransport ships idempotency-keyed batches to a collector server
// (cmd/collectord) with retry and a bounded in-flight queue, and the
// server's dedup makes delivery exactly-once; FuncTransport keeps
// in-process consumers working. Fleet (fleet.go) runs N heterogeneous
// phones fanning their uploads into one Transport — the paper's
// deployment shape as an API.
//
// Beyond the live engine, the package exposes the paper's evaluation
// (RunTable1 … RunTable4, RunFig5) and the crowdsourcing study
// (NewStudy, and NewStudyFrom for collected records), which regenerate
// every table and figure of the paper.
package mopeye

import (
	"fmt"
	"io"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/phonestack"
	"repro/internal/procnet"
	"repro/internal/sockets"
	"repro/internal/testbed"
	"repro/internal/tun"
)

// Server describes one simulated app server to install on the network.
type Server struct {
	// Domain is the server's DNS name (resolvable through the phone).
	Domain string
	// Addr optionally pins the server's IP:port; when empty an address
	// is derived from the domain, port 443.
	Addr string
	// RTTMillis is the round-trip time from the phone to this server.
	RTTMillis float64
	// JitterMillis adds uniform per-packet jitter.
	JitterMillis float64
	// Behaviour selects the canned server behaviour; default Echo.
	Behaviour ServerBehaviour
}

// ServerBehaviour selects what an installed server does.
type ServerBehaviour int

// Server behaviours.
const (
	// Echo writes back whatever it receives.
	Echo ServerBehaviour = iota
	// Chatty answers 4-byte big-endian length requests with that many
	// bytes — a generic API server.
	Chatty
	// HTTPPing answers HTTP requests with 204 No Content.
	HTTPPing
)

// Options configures a simulated phone.
type Options struct {
	// Servers to install. At least one is usually wanted.
	Servers []Server
	// DefaultRTTMillis is the path RTT to addresses not covered by any
	// server entry (default 30 ms).
	DefaultRTTMillis float64
	// DNSRTTMillis is the path RTT to the system resolver (default:
	// half the default RTT — resolvers sit in the ISP).
	DNSRTTMillis float64
	// Engine overrides the engine configuration; nil means the paper's
	// shipped configuration with every §3 optimisation on.
	Engine *engine.Config
	// Workers overrides the engine's worker count: 0 keeps whatever the
	// engine configuration says (the paper-faithful single MainWorker by
	// default); N > 1 runs the sharded multi-worker pipeline with each
	// flow pinned to one worker.
	Workers int
	// ReadBatch overrides the multi-worker burst size: how many tunnel
	// packets the reader retrieves per batched read and the writer
	// flushes per batched write. 0 keeps the engine default (64); 1
	// disables batching (the ablation value). Ignored at Workers=1,
	// which always runs the paper's per-packet read loop.
	ReadBatch int
	// ReadBatchAuto lets the reader self-tune its burst size with an
	// AIMD governor instead of pinning it: ReadBatch (or the engine
	// default) becomes the ceiling, and the realised burst fill drives
	// the live limit between a small floor and that ceiling. The
	// CLI spelling is `-readbatch auto`. Ignored at Workers=1.
	ReadBatchAuto bool
	// SharedDispatcher selects the legacy multi-worker topology — one
	// shared selector drained by a dispatcher goroutine that routes
	// readiness into per-worker event lanes — instead of the default
	// shared-nothing per-worker selectors. It exists as the ablation
	// baseline (`paperbench -exp dispatch -dispatcher shared`); leave
	// it off otherwise. Ignored at Workers=1.
	SharedDispatcher bool
	// RealisticCosts enables the Android cost models (protect/register/
	// dispatch latency, proc parse cost, tunnel write cost). Off by
	// default for deterministic behaviour.
	RealisticCosts bool
	// Loopback runs the network in zero-delay loopback server mode:
	// connects, byte streams, and UDP services complete with no
	// simulated wire delay at all, so benchmarks measure the engine
	// ceiling rather than the path (`paperbench -exp dispatch`). RTT
	// options are ignored when set.
	Loopback bool
	// Seed drives all randomness.
	Seed int64

	// clk injects the phone's time source (network, TUN, stack, engine);
	// nil means the wall clock. Unexported: in-package tests and the
	// scenario runner use it to run phones on simulated time.
	clk clock.Clock
}

// Measurement is one opportunistic RTT measurement.
type Measurement = measure.Record

// Phone is a simulated device with MopEye running.
//
// Beyond the pull-style snapshot accessors (Measurements, ExportCSV,
// AppMedians…), a Phone exposes the streaming pipeline: Subscribe
// taps the live measurement stream as a range-over-func iterator, and
// Attach registers a Sink — CSVSink, JSONLSink, or the crowdsourcing
// Collector — that consumes every measurement for the rest of the
// engine's lifetime. See stream.go and sink.go.
type Phone struct {
	bed *testbed.Bed

	// done is closed once Close has fully torn the phone down; Run
	// waits on it.
	done chan struct{}
	// closeOnce makes Close idempotent and safe against concurrent
	// Subscribe/Attach/Close callers.
	closeOnce sync.Once

	// mu guards the attach bookkeeping below.
	mu     sync.Mutex
	closed bool
	sinks  []*attachedSink
	sinkWG sync.WaitGroup

	// metricsOnce builds the lazy observability registry; see
	// metrics.go.
	metricsOnce sync.Once
	metricsReg  *metrics.Registry
}

// New builds a phone, its network, and starts the engine.
func New(o Options) (*Phone, error) {
	if o.DefaultRTTMillis <= 0 {
		o.DefaultRTTMillis = 30
	}
	if o.DNSRTTMillis <= 0 {
		o.DNSRTTMillis = o.DefaultRTTMillis / 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	cfg := engine.Default()
	if o.Engine != nil {
		cfg = *o.Engine
	}
	if o.Workers > 0 {
		cfg.Workers = o.Workers
	}
	if o.ReadBatch > 0 {
		cfg.ReadBatch = o.ReadBatch
	}
	if o.ReadBatchAuto {
		cfg.ReadBatchAuto = true
	}
	if o.SharedDispatcher {
		cfg.SharedDispatcher = true
	}
	opts := testbed.Options{
		Engine:     cfg,
		EngineSet:  true,
		Link:       netsim.LinkParams{Delay: msToDelay(o.DefaultRTTMillis) / 2},
		DNSLink:    netsim.LinkParams{Delay: msToDelay(o.DNSRTTMillis) / 2},
		DNSLinkSet: true,
		Seed:       o.Seed,
		Sniff:      true,
		Loopback:   o.Loopback,
		Clock:      o.clk,
	}
	if o.RealisticCosts {
		opts.SocketCosts = sockets.AndroidCosts()
		opts.ParseCost = procnet.AndroidParseCost()
		opts.TunWriteCost = tun.AndroidWriteCost()
	}
	for i, s := range o.Servers {
		spec, err := serverSpec(s, i)
		if err != nil {
			return nil, err
		}
		opts.Servers = append(opts.Servers, spec)
	}
	bed, err := testbed.New(opts)
	if err != nil {
		return nil, err
	}
	return &Phone{bed: bed, done: make(chan struct{})}, nil
}

func msToDelay(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

func serverSpec(s Server, idx int) (netsim.ServerSpec, error) {
	var addr netip.AddrPort
	if s.Addr != "" {
		a, err := netip.ParseAddrPort(s.Addr)
		if err != nil {
			return netsim.ServerSpec{}, fmt.Errorf("mopeye: server %q: %w", s.Domain, err)
		}
		addr = a
	} else {
		// Derive a stable address from the install order.
		addr = netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 51, 100, byte(idx + 1)}), 443)
	}
	var h netsim.TCPHandler
	switch s.Behaviour {
	case Chatty:
		h = netsim.ChattyHandler()
	case HTTPPing:
		h = netsim.HTTPPingHandler()
	default:
		h = netsim.EchoHandler()
	}
	return netsim.ServerSpec{
		Domain: s.Domain,
		Addr:   addr,
		Link: netsim.LinkParams{
			Delay:  msToDelay(s.RTTMillis) / 2,
			Jitter: msToDelay(s.JitterMillis),
		},
		Handler: h,
	}, nil
}

// InstallApp registers an app package under a UID, the identity the
// packet-to-app mapping resolves (§2.2).
func (p *Phone) InstallApp(uid int, pkg string) { p.bed.InstallApp(uid, pkg) }

// Conn is an app-side TCP connection through the relay.
type Conn struct {
	c *phonestack.Conn
}

// Connect opens a TCP connection as the app with the given UID. The
// destination is "domain:port" (resolved through the phone's DNS, which
// itself produces a DNS measurement) or a literal "ip:port".
func (p *Phone) Connect(uid int, dst string) (*Conn, error) {
	ap, err := p.resolveDst(uid, dst)
	if err != nil {
		return nil, err
	}
	c, err := p.bed.Phone.Connect(uid, ap, 15*time.Second)
	if err != nil {
		return nil, err
	}
	return &Conn{c: c}, nil
}

func (p *Phone) resolveDst(uid int, dst string) (netip.AddrPort, error) {
	if ap, err := netip.ParseAddrPort(dst); err == nil {
		return ap, nil
	}
	host, port, err := splitHostPort(dst)
	if err != nil {
		return netip.AddrPort{}, err
	}
	res, err := p.bed.Phone.Resolve(uid, testbed.DNSAddr, host, 10*time.Second)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("mopeye: resolving %q: %w", host, err)
	}
	return netip.AddrPortFrom(res.Addr, port), nil
}

// splitHostPort splits "host:port" with net.SplitHostPort semantics,
// so bracketed IPv6 literals like "[::1]:443" parse as an address plus
// port rather than being cut at the wrong colon.
func splitHostPort(s string) (host string, port uint16, err error) {
	host, portStr, err := net.SplitHostPort(s)
	if err != nil {
		return "", 0, fmt.Errorf("mopeye: bad destination %q: %w", s, err)
	}
	if host == "" {
		return "", 0, fmt.Errorf("mopeye: missing host in %q", s)
	}
	p, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil || p == 0 {
		return "", 0, fmt.Errorf("mopeye: bad port in %q", s)
	}
	return host, uint16(p), nil
}

// Resolve performs a DNS lookup as the app with the given UID,
// producing a DNS measurement in the store.
func (p *Phone) Resolve(uid int, name string) (netip.Addr, error) {
	res, err := p.bed.Phone.Resolve(uid, testbed.DNSAddr, name, 10*time.Second)
	if err != nil {
		return netip.Addr{}, err
	}
	return res.Addr, nil
}

// Write sends application bytes.
func (c *Conn) Write(b []byte) (int, error) { return c.c.Write(b) }

// Read receives application bytes.
func (c *Conn) Read(b []byte) (int, error) { return c.c.Read(b) }

// ReadFull reads exactly len(b) bytes.
func (c *Conn) ReadFull(b []byte) error { return c.c.ReadFull(b) }

// Close closes the connection (FIN through the relay).
func (c *Conn) Close() error { return c.c.Close() }

// ConnectLatency is the connect() latency the app itself observed
// through the relay.
func (c *Conn) ConnectLatency() time.Duration { return c.c.ConnectElapsed }

// Measurements returns every opportunistic measurement collected so
// far — the pull-style snapshot of the same stream Subscribe delivers
// push-style, in the same order. Copies the whole store on every
// call; continuous consumers should prefer Subscribe or Attach.
func (p *Phone) Measurements() []Measurement { return p.bed.Store.Snapshot() }

// ExportCSV writes a snapshot of the phone's measurements as CSV —
// the batch form of what MopEye uploads to the crowdsourcing
// collector. For continuous export, Attach a CSVSink (byte-identical
// output) or a Collector instead.
func (p *Phone) ExportCSV(w io.Writer) error {
	return measure.WriteCSV(w, p.bed.Store.Snapshot())
}

// ExportJSONL writes a snapshot of the phone's measurements as JSON
// Lines, the streaming-friendly export (`mopeye -jsonl`). For
// continuous export, Attach a JSONLSink instead.
func (p *Phone) ExportJSONL(w io.Writer) error {
	return measure.WriteJSONL(w, p.bed.Store.Snapshot())
}

// TCPMeasurements returns a snapshot of the per-app TCP RTTs — the
// pull form of Subscribe(ctx, Filter{Kind: TCPOnly}).
func (p *Phone) TCPMeasurements() []Measurement {
	return p.bed.Store.Kind(measure.KindTCP)
}

// DNSMeasurements returns a snapshot of the DNS RTTs — the pull form
// of Subscribe(ctx, Filter{Kind: DNSOnly}).
func (p *Phone) DNSMeasurements() []Measurement {
	return p.bed.Store.Kind(measure.KindDNS)
}

// AppMedians returns each app's median RTT in milliseconds over apps
// with at least minN measurements. The Collector sink maintains the
// same aggregate continuously on its upload schedule.
func (p *Phone) AppMedians(minN int) map[string]float64 {
	return measure.AppMedians(p.TCPMeasurements(), minN)
}

// EngineStats exposes the engine's internal counters.
func (p *Phone) EngineStats() engine.Stats { return p.bed.Eng.Stats() }

// AppTraffic is one app's relayed-volume report — the beyond-RTT
// metric extension the paper's conclusion proposes.
type AppTraffic = engine.AppTraffic

// AppTraffic returns per-app traffic volumes, largest first. Like the
// RTT measurement, this is opportunistic: it costs nothing beyond the
// relaying MopEye already does.
func (p *Phone) AppTraffic() []AppTraffic { return p.bed.Eng.AppTraffic() }

// GroundTruthRTTs returns the wire-level (tcpdump-equivalent) handshake
// RTTs in milliseconds observed toward dst, for validating measurement
// accuracy.
func (p *Phone) GroundTruthRTTs(dst string) ([]float64, error) {
	ap, err := netip.ParseAddrPort(dst)
	if err != nil {
		return nil, fmt.Errorf("mopeye: GroundTruthRTTs wants ip:port, got %q: %w", dst, err)
	}
	return p.bed.Sniffer.RTTsTo(ap), nil
}

// Close stops the engine, ends every live Subscribe stream and
// attached Sink (delivering the records already in flight, then
// flushing and closing the sinks), and tears the simulation down.
// Close is idempotent and safe to call concurrently with Subscribe,
// Attach, and other Close calls; every call returns only after the
// teardown has completed.
func (p *Phone) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		sinks := p.sinks
		p.mu.Unlock()

		// Stop the engine first: after bed.Close no worker can record,
		// so ending the subscriptions cannot truncate the stream —
		// subscribers drain what is already ringed, then see the end.
		p.bed.Close()
		p.sinkWG.Wait()
		for _, as := range sinks {
			as.finish()
		}
		close(p.done)
	})
	<-p.done
}
