package mopeye

import (
	"context"
	"testing"
	"time"
)

// TestScenarioMatrixTruthfulness runs a representative slice of the
// matrix — a clean baseline, a slow-cell ranking case, the mid-run
// handover, and the DNS blackhole — and requires every truthfulness
// invariant to hold: medians inside the injected envelopes, exact
// datagram accounting, app attribution, and the planted slow network
// ranked slowest by the §4.2 crowd analysis.
func TestScenarioMatrixTruthfulness(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario cells run seconds of real traffic")
	}
	res, err := RunScenarioMatrix(context.Background(), ScenarioMatrixOptions{
		Profiles:  []string{"clean-wifi", "lossy-cellular", "handover", "dns-blackhole"},
		Workloads: []string{"web"},
		Seed:      11,
	})
	if err != nil {
		t.Fatalf("RunScenarioMatrix: %v", err)
	}
	if got, want := len(res.Cells), 4; got != want {
		t.Fatalf("matrix has %d cells, want %d", got, want)
	}
	if fails := res.Failures(); len(fails) > 0 {
		t.Fatalf("truthfulness violations:\n%s\n\nfull matrix:\n%s",
			joinLines(fails), res.String())
	}

	byProfile := map[string]ScenarioCell{}
	for _, c := range res.Cells {
		byProfile[c.Profile] = c
	}

	// The ranking cells must actually have ranked (not silently
	// skipped) and put the planted ISP last.
	for _, p := range []string{"lossy-cellular", "handover"} {
		c := byProfile[p]
		if !c.Ranked || !c.RankedSlowest {
			t.Errorf("%s: Ranked=%v RankedSlowest=%v, want true/true", p, c.Ranked, c.RankedSlowest)
		}
	}

	// The handover cell must show the mid-run degradation: its median
	// sits above the clean baseline's (established flows felt the
	// SetLink), while clean stays near its 20 ms RTT.
	clean, hand := byProfile["clean-wifi"], byProfile["handover"]
	if hand.TCPMedianMS <= clean.TCPMedianMS {
		t.Errorf("handover median %.1fms not above clean %.1fms", hand.TCPMedianMS, clean.TCPMedianMS)
	}

	// The blackhole cell is the pool-starvation regime: no DNS
	// measurement can exist, timeouts must be counted, and TCP to the
	// literal site must have kept flowing.
	bh := byProfile["dns-blackhole"]
	if bh.DNSSamples != 0 {
		t.Errorf("blackhole cell has %d DNS samples, want 0", bh.DNSSamples)
	}
	if bh.DNSTimeouts+bh.UDPDropped == 0 {
		t.Error("blackhole cell counted no timeouts/drops")
	}
	if bh.TCPSamples == 0 {
		t.Error("blackhole cell has no TCP samples: TCP did not survive the dead resolver")
	}
	if bh.DatagramsSent == 0 || bh.DatagramsSent != bh.DatagramsAccounted {
		t.Errorf("blackhole accounting: sent %d, accounted %d", bh.DatagramsSent, bh.DatagramsAccounted)
	}
}

// TestScenarioMatrixRejectsUnknownNames pins the option validation.
func TestScenarioMatrixRejectsUnknownNames(t *testing.T) {
	if _, err := RunScenarioMatrix(context.Background(), ScenarioMatrixOptions{Profiles: []string{"carrier-pigeon"}}); err == nil {
		t.Fatal("accepted unknown profile")
	}
	if _, err := RunScenarioMatrix(context.Background(), ScenarioMatrixOptions{Workloads: []string{"doomscroll"}}); err == nil {
		t.Fatal("accepted unknown workload")
	}
	if _, err := RunScenarioMatrix(context.Background(), ScenarioMatrixOptions{PhonesPerCell: 1}); err == nil {
		t.Fatal("accepted a cell without a clean baseline")
	}
}

// TestScenarioDNSFlakyEnvelope runs the flaky-resolver cell alone: the
// DNS median must track the injected resolver path (not the healthy
// TCP path), and the ranking metric for the cell is DNS.
func TestScenarioDNSFlakyEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario cells run seconds of real traffic")
	}
	res, err := RunScenarioMatrix(context.Background(), ScenarioMatrixOptions{
		Profiles:     []string{"dns-flaky"},
		Workloads:    []string{"web"},
		CellDuration: 2500 * time.Millisecond,
		Seed:         5,
	})
	if err != nil {
		t.Fatalf("RunScenarioMatrix: %v", err)
	}
	if fails := res.Failures(); len(fails) > 0 {
		t.Fatalf("truthfulness violations:\n%s\n\nfull matrix:\n%s", joinLines(fails), res.String())
	}
	c := res.Cells[0]
	if c.DNSSamples < 2 {
		t.Fatalf("flaky cell has %d DNS samples, want >= 2", c.DNSSamples)
	}
	if c.DNSMedianMS <= c.TCPMedianMS {
		t.Errorf("DNS median %.1fms should exceed the healthy TCP median %.1fms under a slow resolver",
			c.DNSMedianMS, c.TCPMedianMS)
	}
	if !c.Ranked || !c.RankedSlowest {
		t.Errorf("Ranked=%v RankedSlowest=%v, want true/true", c.Ranked, c.RankedSlowest)
	}
}

func joinLines(ss []string) string {
	out := ""
	for _, s := range ss {
		out += "  " + s + "\n"
	}
	return out
}
