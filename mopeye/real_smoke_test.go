//go:build linux && realtun

package mopeye

import (
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/upstream"
)

// TestRealTunSocksSmoke is the root-gated end-to-end smoke for the real
// data plane: a kernel TUN device carries a live TCP connection from a
// plain client socket through the engine's relay, out a SOCKS5 proxy
// on loopback, to a backend — and the engine's opportunistic
// measurement pipeline attributes the connect RTT to the right app and
// destination from the real /proc/net tables.
//
// The proxy exit is what makes the smoke self-contained: the client
// dials a TEST-NET-2 address routed into the TUN, and the proxy's Dial
// rewrites every CONNECT to the loopback backend. A direct exit would
// dial the original TEST-NET-2 destination, which routes straight back
// into the TUN — a loop by construction — so direct real-TUN operation
// needs a default route and is exercised manually, not here.
//
// Skips (never fails) without root, /dev/net/tun, or the ip tool, so
// the same test file is safe in unprivileged CI.
func TestRealTunSocksSmoke(t *testing.T) {
	if os.Geteuid() != 0 {
		t.Skip("needs root (or CAP_NET_ADMIN) to open and address a TUN device")
	}
	if _, err := os.Stat("/dev/net/tun"); err != nil {
		t.Skipf("no /dev/net/tun: %v", err)
	}
	if _, err := exec.LookPath("ip"); err != nil {
		t.Skipf("no ip tool: %v", err)
	}

	// Loopback backend: read a line, answer, close.
	backend, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	go func() {
		for {
			c, err := backend.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4)
				if _, err := io.ReadFull(c, buf); err == nil && string(buf) == "ping" {
					c.Write([]byte("pong"))
				}
			}(c)
		}
	}()

	// Authed SOCKS5 proxy on loopback whose Dial rewrites every CONNECT
	// to the backend; it records the dst the engine asked for.
	proxy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	var mu sync.Mutex
	var connectDsts []netip.AddrPort
	go func() {
		for {
			c, err := proxy.Accept()
			if err != nil {
				return
			}
			go upstream.ServeConn(c, upstream.ServerConfig{
				Username: "smoke", Password: "s3cret",
				Dial: func(dst netip.AddrPort) (io.ReadWriteCloser, error) {
					mu.Lock()
					connectDsts = append(connectDsts, dst)
					mu.Unlock()
					return net.Dial("tcp", backend.Addr().String())
				},
			})
		}
	}()

	phone, err := NewReal(RealOptions{
		TunName:  "mopsmoke0",
		Upstream: fmt.Sprintf("socks5://smoke:s3cret@%s", proxy.Addr()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()
	phone.InstallApp(os.Getuid(), "smoketest")

	// TEST-NET-2, disjoint from netsim's TEST-NET-1 and from any real
	// container network.
	runIP(t, "addr", "add", "198.51.100.1/24", "dev", phone.Device())
	runIP(t, "link", "set", "dev", phone.Device(), "up")

	const dst = "198.51.100.9:80"
	conn, err := net.DialTimeout("tcp", dst, 10*time.Second)
	if err != nil {
		t.Fatalf("dial through TUN relay: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	reply := make([]byte, 4)
	if _, err := io.ReadFull(conn, reply); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(reply) != "pong" {
		t.Fatalf("reply = %q, want pong", reply)
	}

	// The proxy must have seen the ORIGINAL destination — the relay
	// CONNECTs to what the app dialed, the proxy decides the exit.
	mu.Lock()
	sawDst := len(connectDsts) == 1 && connectDsts[0].String() == dst
	dsts := fmt.Sprint(connectDsts)
	mu.Unlock()
	if !sawDst {
		t.Errorf("proxy CONNECT dsts = %s, want exactly [%s]", dsts, dst)
	}

	// The measurement pipeline runs asynchronously off the handshake;
	// poll for the attributed record.
	deadline := time.Now().Add(10 * time.Second)
	var rec *Measurement
	for time.Now().Before(deadline) && rec == nil {
		for _, m := range phone.TCPMeasurements() {
			if m.Dst.String() == dst {
				m := m
				rec = &m
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if rec == nil {
		t.Fatalf("no TCP measurement for %s; stats %+v", dst, phone.EngineStats())
	}
	if rec.App != "smoketest" {
		t.Errorf("record attributed to %q, want smoketest (uid %d)", rec.App, rec.UID)
	}
	if rec.RTT <= 0 || rec.RTT > 5*time.Second {
		t.Errorf("implausible connect RTT %v", rec.RTT)
	}
	if ts := phone.TunStats(); ts.PacketsOut == 0 || ts.PacketsIn == 0 {
		t.Errorf("tun stats show no traffic: %+v", ts)
	}
}

// runIP execs `ip args...`, failing the test with the tool's output.
func runIP(t *testing.T, args ...string) {
	t.Helper()
	out, err := exec.Command("ip", args...).CombinedOutput()
	if err != nil {
		t.Fatalf("ip %s: %v: %s", strings.Join(args, " "), err, strings.TrimSpace(string(out)))
	}
}
