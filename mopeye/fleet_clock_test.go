package mopeye

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// TestFleetPhoneTimeUsesPhoneClock pins the duration-accounting fix:
// Fleet used to time everything with time.Now() while the phones ran
// on an injected clock.Clock, so under simulated time the stats
// misreported. A phone on a virtual clock whose workload sleeps 500 ms
// of simulated time must report Elapsed/PhoneTime >= 500 ms even
// though almost no wall time passes, while Duration stays wall-clock.
func TestFleetPhoneTimeUsesPhoneClock(t *testing.T) {
	vclk := clock.NewVirtual(time.Unix(1_700_000_000, 0))

	// Pump simulated time forward continuously so every component of
	// the bed (engine timers, sleeps, the workload below) makes
	// progress. The pump outlives Run: teardown also sleeps on the
	// virtual clock.
	stopPump := make(chan struct{})
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		for {
			select {
			case <-stopPump:
				return
			default:
				vclk.Advance(5 * time.Millisecond)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	defer func() {
		close(stopPump)
		pumpWG.Wait()
	}()

	const simSleep = 500 * time.Millisecond
	fleet, err := NewFleet(FleetOptions{
		Phones: []FleetPhone{{
			Device: "virt-1",
			Options: Options{
				Servers: []Server{{Domain: "site.example.com", RTTMillis: 5}},
				clk:     vclk,
			},
			Apps: map[int]string{10001: "com.example.app"},
			Workload: func(ctx context.Context, p *Phone) error {
				p.bed.Clk.Sleep(simSleep)
				return nil
			},
		}},
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	if err := fleet.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}

	st := fleet.PhoneStatuses()[0]
	if st.Elapsed < simSleep {
		t.Fatalf("Elapsed = %v, want >= %v (phone-clock time, not wall time)", st.Elapsed, simSleep)
	}
	// The pump advances 5 ms per tick, so the sleep overshoots by at
	// most a few ticks plus whatever ran between the stamps; anything
	// wildly above the sleep would mean Elapsed is timing the wrong
	// thing.
	if st.Elapsed > simSleep+10*time.Second {
		t.Fatalf("Elapsed = %v, implausibly large for a %v workload", st.Elapsed, simSleep)
	}

	stats := fleet.Stats()
	if stats.PhoneTime != st.Elapsed {
		t.Fatalf("PhoneTime = %v, want max per-phone Elapsed %v", stats.PhoneTime, st.Elapsed)
	}
	if stats.Duration <= 0 {
		t.Fatalf("Duration = %v, want positive wall-clock span", stats.Duration)
	}
}
