package mopeye

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/phonestack"
)

// This file is the engine-ceiling benchmark behind `paperbench -exp
// dispatch` and BenchmarkEngineCeiling: the same multi-app flood as the
// parallel sweep, but over a zero-delay loopback network
// (netsim.SetLoopback) so the measured packets/sec is bounded by the
// engine — TUN queues, dispatch, flow table, relay handlers — rather
// than by the simulated wire. Separating the compute ceiling from the
// workload this way is the WLCG benchmarking-workflows idea PAPERS.md
// points at. The flood also fires datagrams at a loopback UDP echo
// service, exercising the pooled UDP relay (sessions + bounded worker
// pool) alongside the zero-copy TCP dispatch path.

// DispatchBenchOptions configures the loopback ceiling flood.
type DispatchBenchOptions struct {
	// WorkerCounts is the sweep, e.g. [1, 2, 4].
	WorkerCounts []int
	// Apps is the number of simulated apps, each with its own server.
	Apps int
	// ConnsPerApp is the number of concurrent connections per app.
	ConnsPerApp int
	// EchoesPerConn is the number of request/response rounds each
	// connection performs.
	EchoesPerConn int
	// PayloadBytes is the request size per echo.
	PayloadBytes int
	// UDPPerConn is how many datagrams each connection's goroutine
	// fires at the loopback UDP echo service.
	UDPPerConn int
	// ReadBatch sets the engine's burst size for the run: 0 keeps the
	// engine default (64), 1 disables batching — sweeping it isolates
	// what burst reads buy at the ceiling (`paperbench -exp dispatch
	// -readbatch 1,64`).
	ReadBatch int
	// ReadBatchAuto runs the AIMD burst governor instead of a pinned
	// ReadBatch (which then serves as the ceiling) — the `-readbatch
	// auto` arm, proving the governor converges near the best fixed
	// batch.
	ReadBatchAuto bool
	// SharedDispatcher runs the legacy shared-selector + dispatcher
	// topology instead of the default per-worker selectors — the
	// ablation baseline quantifying what the shared-nothing hot path
	// buys (`paperbench -exp dispatch -dispatcher shared`).
	SharedDispatcher bool
	// Subscribers attaches this many live measurement subscribers
	// (Phone.Subscribe draining concurrently) for the duration of the
	// flood — the BenchmarkSubscribeOverhead knob proving the
	// broadcast layer's cost at the engine ceiling: zero for the
	// baseline, 1/8 for fan-out.
	Subscribers int
	// Metrics arms the phone's observability registry for the flood:
	// the engine instruments register, the RTT quantile feed
	// subscribes, and a background scraper renders the exposition
	// repeatedly while the flood runs. The with/without arms price the
	// instrumentation at the engine ceiling (`paperbench -exp dispatch
	// -metrics`); both must land within noise of each other.
	Metrics bool
}

// DefaultDispatchBenchOptions returns a flood heavy enough to saturate
// the engine but quick to run.
func DefaultDispatchBenchOptions() DispatchBenchOptions {
	return DispatchBenchOptions{
		WorkerCounts:  []int{1, 2, 4},
		Apps:          4,
		ConnsPerApp:   8,
		EchoesPerConn: 60,
		PayloadBytes:  1200,
		UDPPerConn:    10,
	}
}

// DispatchBenchRow is one worker count's result.
type DispatchBenchRow struct {
	Workers       int
	Duration      time.Duration
	Packets       int // tunnel packets in both directions
	PacketsPerSec float64
	UDPRelayed    int // datagram responses relayed by the pooled relay
	UDPDropped    int // datagrams dropped at the relay's bounded queue
	Errors        int
	// Streamed and StreamDropped account the measurement broadcast
	// when Options.Subscribers > 0: records delivered to subscribers
	// and records lost to full subscriber rings.
	Streamed      int
	StreamDropped int
	// AvgReadBatch is the realised burst size over the flood
	// (BatchedPackets/ReadBatches); BatchLimit is the reader's burst
	// limit when the flood ended — under ReadBatchAuto, where the
	// governor converged. Both zero at Workers=1 (no batched reader).
	AvgReadBatch float64
	BatchLimit   int
}

// DispatchBenchResult is the full sweep.
type DispatchBenchResult struct {
	Options DispatchBenchOptions
	Rows    []DispatchBenchRow
}

// Speedup returns row[i] throughput relative to the Workers=1 row
// (0 when absent).
func (r *DispatchBenchResult) Speedup(workers int) float64 {
	var base, at float64
	for _, row := range r.Rows {
		if row.Workers == 1 {
			base = row.PacketsPerSec
		}
		if row.Workers == workers {
			at = row.PacketsPerSec
		}
	}
	if base == 0 {
		return 0
	}
	return at / base
}

// String renders the sweep as a table; with subscribers attached the
// stream accounting gets its own columns.
func (r *DispatchBenchResult) String() string {
	var b strings.Builder
	streaming := r.Options.Subscribers > 0
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %10s %10s %8s %10s %6s",
		"workers", "duration", "packets", "pkts/sec", "udp-relay", "udp-drop", "speedup",
		"avg-batch", "limit")
	if streaming {
		fmt.Fprintf(&b, " %10s %12s", "streamed", "stream-drop")
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %10s %10d %12.0f %10d %10d %7.2fx %10.1f %6d",
			row.Workers, row.Duration.Round(time.Millisecond), row.Packets,
			row.PacketsPerSec, row.UDPRelayed, row.UDPDropped, r.Speedup(row.Workers),
			row.AvgReadBatch, row.BatchLimit)
		if streaming {
			fmt.Fprintf(&b, " %10d %12d", row.Streamed, row.StreamDropped)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// dispatchUDPEcho is where the loopback UDP echo service listens.
var dispatchUDPEcho = netip.MustParseAddrPort("203.0.113.200:7777")

// RunDispatchBench floods a loopback phone once per worker count and
// reports engine-ceiling throughput for each.
func RunDispatchBench(o DispatchBenchOptions) (*DispatchBenchResult, error) {
	if len(o.WorkerCounts) == 0 {
		o.WorkerCounts = []int{1, 2, 4}
	}
	res := &DispatchBenchResult{Options: o}
	for _, w := range o.WorkerCounts {
		row, err := runDispatchOnce(o, w)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runDispatchOnce(o DispatchBenchOptions, workers int) (DispatchBenchRow, error) {
	servers := make([]Server, o.Apps)
	for i := range servers {
		servers[i] = Server{
			Domain: fmt.Sprintf("ceiling%d.example", i),
			Addr:   fmt.Sprintf("203.0.113.%d:80", 10+i),
		}
	}
	phone, err := New(Options{
		Servers:          servers,
		Workers:          workers,
		ReadBatch:        o.ReadBatch,
		ReadBatchAuto:    o.ReadBatchAuto,
		SharedDispatcher: o.SharedDispatcher,
		Loopback:         true,
	})
	if err != nil {
		return DispatchBenchRow{}, err
	}
	defer phone.Close()
	for i := 0; i < o.Apps; i++ {
		phone.InstallApp(20001+i, fmt.Sprintf("ceiling.app%d", i))
	}
	phone.bed.Net.HandleUDP(dispatchUDPEcho, 0, func(req []byte, _ netip.AddrPort) []byte {
		return req
	})

	// Live subscribers, each draining its own bounded ring for the
	// whole flood; Subscribe registers synchronously, so all of them
	// observe the flood from its first record, and their streams end
	// when the phone closes.
	var streamed atomic.Int64
	var subWG sync.WaitGroup
	for i := 0; i < o.Subscribers; i++ {
		stream := phone.Subscribe(context.Background(), Filter{})
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for range stream {
				streamed.Add(1)
			}
		}()
	}

	// The metrics arm: arm the registry (engine instruments + RTT
	// quantile feed) before the flood and scrape it continuously while
	// the flood runs, so the arm prices registration, the quantile
	// drain, AND concurrent gathers — the full observability cost.
	scrapeDone := make(chan struct{})
	if o.Metrics {
		if err := phone.WriteMetrics(io.Discard); err != nil {
			phone.Close()
			return DispatchBenchRow{}, err
		}
		go func() {
			defer close(scrapeDone)
			for {
				select {
				case <-phone.done:
					return
				default:
				}
				_ = phone.WriteMetrics(io.Discard)
				time.Sleep(20 * time.Millisecond)
			}
		}()
	} else {
		close(scrapeDone)
	}

	payload := make([]byte, o.PayloadBytes)
	var errCount atomic.Int64

	// flood is the timed work: the echo rounds plus the UDP send burst.
	// It returns the open UDP socket so response draining — which can
	// block on Recv timeouts when the relay legitimately drops — stays
	// outside the throughput clock.
	flood := func(a int) *phonestack.UDPConn {
		uid := 20001 + a
		conn, err := phone.Connect(uid, servers[a].Addr)
		if err != nil {
			errCount.Add(1)
			return nil
		}
		defer conn.Close()
		buf := make([]byte, len(payload))
		for i := 0; i < o.EchoesPerConn; i++ {
			if _, err := conn.Write(payload); err != nil {
				errCount.Add(1)
				return nil
			}
			if err := conn.ReadFull(buf); err != nil {
				errCount.Add(1)
				return nil
			}
		}
		if o.UDPPerConn == 0 {
			return nil
		}
		u, err := phone.bed.Phone.OpenUDP(uid)
		if err != nil {
			errCount.Add(1)
			return nil
		}
		for i := 0; i < o.UDPPerConn; i++ {
			if err := u.SendTo(dispatchUDPEcho, payload[:64]); err != nil {
				errCount.Add(1)
				break
			}
		}
		return u
	}

	start := time.Now()
	var wgFlood, wgDrain sync.WaitGroup
	for a := 0; a < o.Apps; a++ {
		for c := 0; c < o.ConnsPerApp; c++ {
			wgFlood.Add(1)
			wgDrain.Add(1)
			go func(a int) {
				defer wgDrain.Done()
				u := flood(a)
				wgFlood.Done()
				if u == nil {
					return
				}
				defer u.Close()
				// Drain whatever responses made it back; the relay may
				// legitimately drop under overload, so absence is not
				// an error (and is not timed).
				for i := 0; i < o.UDPPerConn; i++ {
					if _, _, err := u.Recv(200 * time.Millisecond); err != nil {
						break
					}
				}
			}(a)
		}
	}
	wgFlood.Wait()
	dur := time.Since(start)
	// Snapshot the packet counters at the same instant the clock stops,
	// so pkts/sec divides a consistent window; packets relayed during
	// the untimed drain below must not inflate the ceiling.
	mid := phone.EngineStats()
	wgDrain.Wait()

	// UDP accounting is read after the drain so late relays are counted.
	st := phone.EngineStats()
	pkts := mid.PacketsFromTun + mid.PacketsToTun

	// Close ends the subscriber streams (after delivering what is
	// ringed); only then are the stream counters complete.
	phone.Close()
	subWG.Wait()
	<-scrapeDone
	return DispatchBenchRow{
		Workers:       workers,
		Duration:      dur,
		Packets:       pkts,
		PacketsPerSec: float64(pkts) / dur.Seconds(),
		UDPRelayed:    st.UDPRelayed,
		UDPDropped:    st.UDPDropped,
		Errors:        int(errCount.Load()),
		Streamed:      int(streamed.Load()),
		StreamDropped: int(phone.StreamDrops()),
		AvgReadBatch:  mid.AvgReadBatch,
		BatchLimit:    mid.ReadBatchLimit,
	}, nil
}
