package mopeye

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/measure"
)

// Sink consumes a measurement stream. Implementations are driven by
// Phone.Attach (one Accept per measurement on a dedicated drain
// goroutine, Flush+Close at phone teardown) but are plain values —
// they can equally be fed by hand from a Subscribe loop or a replayed
// export. Accept, Flush and Close are never called concurrently by
// Attach; sinks shared across goroutines must lock, and the shipped
// implementations do.
type Sink interface {
	// Accept consumes one measurement. Returning an error detaches
	// the sink from an Attach-driven stream.
	Accept(Measurement) error
	// Flush forces buffered state out (rows to the writer, a pending
	// batch to the collector).
	Flush() error
	// Close flushes and releases the sink. The sink is not usable
	// afterwards.
	Close() error
}

// CSVSink streams measurements as CSV rows — the continuous form of
// ExportCSV, byte-identical given the same records. The caller keeps
// ownership of w; Close flushes but does not close it.
type CSVSink struct {
	mu  sync.Mutex
	enc *measure.CSVEncoder
}

// NewCSVSink builds a CSV sink over w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{enc: measure.NewCSVEncoder(w)}
}

// Accept writes one row and flushes it through — measurements arrive
// at connection rate, not packet rate, so per-record flushing is
// cheap and keeps a tailing consumer live instead of waiting on a
// buffer to fill.
func (s *CSVSink) Accept(m Measurement) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Write(m); err != nil {
		return err
	}
	return s.enc.Flush()
}

// Flush writes buffered rows (and the header on an empty stream).
func (s *CSVSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Flush()
}

// Close flushes; the underlying writer stays open.
func (s *CSVSink) Close() error { return s.Flush() }

// JSONLSink streams measurements as JSON Lines — self-describing,
// append-friendly, the format behind `mopeye -follow -jsonl`. The
// caller keeps ownership of w; Close flushes but does not close it.
type JSONLSink struct {
	mu  sync.Mutex
	enc *measure.JSONLEncoder
}

// NewJSONLSink builds a JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: measure.NewJSONLEncoder(w)}
}

// Accept writes one line and flushes it through, so a consumer
// tailing the stream (`mopeye -jsonl | jq`) sees each measurement as
// it happens rather than when a buffer fills.
func (s *JSONLSink) Accept(m Measurement) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Write(m); err != nil {
		return err
	}
	return s.enc.Flush()
}

// Flush pushes buffered lines through.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Flush()
}

// Close flushes; the underlying writer stays open.
func (s *JSONLSink) Close() error { return s.Flush() }

// CollectorOptions tunes the Collector's upload policy — the paper's
// client-side batching, which holds measurements locally and uploads
// them in bursts rather than per record.
type CollectorOptions struct {
	// BatchSize uploads once this many measurements are pending.
	// Default 256.
	BatchSize int
	// Interval additionally uploads a non-empty pending batch when
	// this much time has passed since the last upload, checked as
	// measurements arrive. Zero or negative disables interval uploads
	// (the default: size-and-flush only, which keeps tests
	// deterministic).
	Interval time.Duration
	// Device stamps uploaded records that carry no device attribution,
	// identifying this phone in the crowdsourced dataset. Default
	// "device-live".
	Device string
	// MinPerApp is the minimum records per app for the per-app median
	// aggregate recomputed on each upload. Default 1.
	MinPerApp int
	// Transport, when set, ships every batch toward a collector server
	// — HTTPTransport for the wire, FuncTransport/TransportFunc for
	// in-process consumers. Each batch carries the device stamp, a
	// 1-based sequence number, and an idempotency key unique to this
	// collector, so redelivered batches dedup server-side. Upload is
	// called with the collector's lock held and must not block on the
	// network (HTTPTransport enqueues) or call back into the
	// collector. nil keeps uploads in-process only: the local dataset
	// (Records, AppMedians, Study) is maintained either way, and the
	// collector never closes the transport — the owner does, after
	// every phone sharing it has flushed.
	Transport Transport

	// now is the clock, overridable in tests.
	now func() time.Time
	// nonce overrides the random per-collector key component in tests.
	nonce string
}

// Collector is the phone-side uploader: a Sink that batches a phone's
// measurements by size/interval the way MopEye's uploader does, stamps
// them with the device identity, and ships each batch through its
// Transport — HTTPTransport to a live collector server
// (cmd/collectord), or in-process when no Transport is set. It also
// maintains the local mirror of everything uploaded (per-app median
// RTTs recomputed on every upload, Records, and Study(), which hands
// the records to the same §4.2 code that analyses the paper's
// 5.25M-record deployment dataset).
//
// Deprecated consumption pattern: reading Collector.Records() from a
// callback-shaped integration. New code should set
// CollectorOptions.Transport — FuncTransport adapts a bare
// func([]Measurement) error during migration — so the upload path is
// explicit and can move onto the wire without touching the policy.
type Collector struct {
	mu         sync.Mutex
	o          CollectorOptions
	pending    []measure.Record
	uploaded   []measure.Record
	uploads    int
	lastUpload time.Time
	// nonce makes this collector's idempotency keys unique even when
	// two phones share a device stamp.
	nonce string
}

// NewCollector builds a collector with the given upload policy.
func NewCollector(o CollectorOptions) *Collector {
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.Device == "" {
		o.Device = "device-live"
	}
	if o.MinPerApp <= 0 {
		o.MinPerApp = 1
	}
	if o.now == nil {
		o.now = time.Now
	}
	nonce := o.nonce
	if nonce == "" {
		var raw [8]byte
		rand.Read(raw[:]) // never fails (crypto/rand panics instead)
		nonce = hex.EncodeToString(raw[:])
	}
	return &Collector{o: o, lastUpload: o.now(), nonce: nonce}
}

// Accept queues one measurement, uploading when the batch-size or
// interval policy fires. With no Transport it never returns an error;
// with one, a synchronous transport error is returned (and detaches
// an Attach-driven collector, like any failing sink).
func (c *Collector) Accept(m Measurement) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = append(c.pending, m)
	if len(c.pending) >= c.o.BatchSize ||
		(c.o.Interval > 0 && c.o.now().Sub(c.lastUpload) >= c.o.Interval) {
		return c.upload()
	}
	return nil
}

// Flush uploads the pending batch regardless of policy.
func (c *Collector) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.upload()
}

// Close performs the final upload. The collector's uploaded dataset
// remains readable afterwards; a shared Transport is left open for
// its owner to close.
func (c *Collector) Close() error { return c.Flush() }

// upload moves the pending batch server-side: stamps the device
// attribution, appends to the local uploaded dataset, and — when a
// Transport is configured — ships the batch under a fresh idempotency
// key. An empty pending batch is suppressed entirely: no sequence
// number is consumed and the transport is not called. Caller holds
// c.mu.
func (c *Collector) upload() error {
	if len(c.pending) == 0 {
		return nil
	}
	stamped := make([]measure.Record, 0, len(c.pending))
	for _, r := range c.pending {
		if r.Device == "" {
			r.Device = c.o.Device
		}
		stamped = append(stamped, r)
	}
	c.uploaded = append(c.uploaded, stamped...)
	c.pending = c.pending[:0]
	c.uploads++
	c.lastUpload = c.o.now()
	if c.o.Transport == nil {
		return nil
	}
	b := Batch{
		Device:  c.o.Device,
		Seq:     c.uploads,
		Key:     fmt.Sprintf("%s/%s/%06d", c.o.Device, c.nonce, c.uploads),
		Records: stamped,
	}
	return c.o.Transport.Upload(context.Background(), b)
}

func filterTCP(recs []measure.Record) []measure.Record {
	out := make([]measure.Record, 0, len(recs))
	for _, r := range recs {
		if r.Kind == measure.KindTCP {
			out = append(out, r)
		}
	}
	return out
}

// Uploads reports how many batches have been uploaded.
func (c *Collector) Uploads() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.uploads
}

// Pending reports the measurements queued but not yet uploaded.
func (c *Collector) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Records returns a copy of the uploaded dataset, device-stamped, in
// upload order.
func (c *Collector) Records() []Measurement {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]measure.Record(nil), c.uploaded...)
}

// AppMedians returns the server-side aggregate as of the last upload:
// each app's median TCP RTT in milliseconds over apps with at least
// MinPerApp uploaded records. Computed on demand — pending records do
// not move the aggregate, only uploads do.
func (c *Collector) AppMedians() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return measure.AppMedians(filterTCP(c.uploaded), c.o.MinPerApp)
}

// Study hands the uploaded records to the §4.2 analysis pipeline: a
// live phone's stream becomes a Study exactly the way the generated
// deployment dataset does. Call after Flush/Close (or at any upload
// boundary).
func (c *Collector) Study() *Study {
	return NewStudyFrom(c.Records())
}
