package mopeye

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/crowd"
	"repro/internal/measure"
	"repro/internal/sketch"
)

// This file is the collector load harness behind `paperbench -exp
// ingest`: the paper's deployment question — can one collector absorb
// a fleet of 100k..1M phones? — asked of this implementation. No
// engine runs; worker goroutines synthesize batches for N simulated
// devices and push them through real HTTPTransports into a
// crowd.ShardedServer, so what gets measured is exactly the upload hot
// path: HTTP + wire decode + shard dedup + sketch update. The harness
// runs RetainRecords=off by design — at fleet scale the sketches are
// the product — and reports records/sec, per-attempt upload latency
// quantiles (sketched, naturally), the dedup-map footprint, and heap
// growth.

// IngestBenchOptions configures a collector ingest load run.
type IngestBenchOptions struct {
	// Devices is the simulated fleet size. Default 10_000.
	Devices int
	// BatchesPerDevice and RecordsPerBatch shape each device's upload
	// volume. Defaults 1 and 8.
	BatchesPerDevice int
	RecordsPerBatch  int
	// DuplicateEvery redelivers every Nth batch (same idempotency key)
	// so the dedup path is exercised under load; <= 0 disables.
	// Default 20.
	DuplicateEvery int
	// Workers is the number of concurrent uploader transports —
	// simulated upload concurrency. Default GOMAXPROCS.
	Workers int
	// ServerShards is the crowd.ShardedServer shard count. Default 4.
	ServerShards int
	// IngestShards is each shard server's internal lock-shard count
	// (0 = crowd default).
	IngestShards int
	// RetainRecords keeps raw records server-side (off is the
	// fleet-scale configuration and the default here).
	RetainRecords bool
	// SpoolDir spools accepted batches when non-empty (off by default:
	// the harness measures ingest, not disk).
	SpoolDir string
	// Apps is the synthetic app-population size. Default 12.
	Apps int
	// Seed makes the synthesized workload reproducible. Default 1.
	Seed int64
	// VerifyExact additionally keeps every synthesized RTT client-side
	// and compares the server's sketched per-app medians against exact
	// nearest-rank medians — the end-to-end sketch-accuracy check. Costs
	// O(records) client memory; meant for smoke-sized runs.
	VerifyExact bool
	// MetricsAddr serves the collector's merged /metrics exposition on
	// this address (e.g. "127.0.0.1:9137") for the duration of the run,
	// so upload rates, dedup hits, and per-shard skew are scrapeable
	// live mid-load (`paperbench -exp ingest -metrics-addr ...`; the CI
	// metrics-smoke step curls it). Empty disables.
	MetricsAddr string
}

// DefaultIngestBenchOptions returns the smoke-sized load.
func DefaultIngestBenchOptions() IngestBenchOptions {
	return IngestBenchOptions{
		Devices:          10_000,
		BatchesPerDevice: 1,
		RecordsPerBatch:  8,
		DuplicateEvery:   20,
		ServerShards:     4,
	}
}

// IngestBenchResult is one load run's outcome.
type IngestBenchResult struct {
	Options IngestBenchOptions

	Devices  int
	Batches  int // unique batches delivered (excludes redeliveries)
	Records  int
	Duration time.Duration

	RecordsPerSec float64
	BatchesPerSec float64

	// UploadP50MS / UploadP99MS are per-attempt upload latencies
	// (sketched client-side via Transport.OnAttempt).
	UploadP50MS float64
	UploadP99MS float64

	// DedupKeys is the server's idempotency-key count after the run —
	// the structure whose footprint grows with fleet lifetime.
	DedupKeys int
	// HeapGrowthMB is the server-process heap delta across the run
	// (post-GC HeapAlloc, after minus before). With RetainRecords off it
	// bounds the collector's marginal cost of this much ingest.
	HeapGrowthMB float64

	Server crowd.ServerStats
	// MedianMaxRelErr is the worst sketched-vs-exact per-app median
	// relative error (VerifyExact runs only; see IngestBenchOptions).
	MedianMaxRelErr float64
	Verified        bool
}

// String renders the run for EXPERIMENTS.md.
func (r *IngestBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%9s %8s %9s %10s %12s %10s %10s %10s %9s\n",
		"devices", "workers", "shards", "duration", "recs/sec", "p50-up", "p99-up", "dedup-keys", "heap+MB")
	fmt.Fprintf(&b, "%9d %8d %9d %10s %12.0f %8.2fms %8.2fms %10d %9.1f\n",
		r.Devices, r.Options.Workers, r.Options.ServerShards, r.Duration.Round(time.Millisecond),
		r.RecordsPerSec, r.UploadP50MS, r.UploadP99MS, r.DedupKeys, r.HeapGrowthMB)
	fmt.Fprintf(&b, "server: batches=%d records=%d duplicates=%d",
		r.Server.Batches, r.Server.Records, r.Server.Duplicates)
	if r.Verified {
		fmt.Fprintf(&b, "  sketch-vs-exact median err=%.4f (alpha %.3f)",
			r.MedianMaxRelErr, sketch.DefaultAlpha)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// ingestWorker is one uploader's slice of the fleet: its own transport
// (blocking, so nothing drops and the server sets the pace), its own
// latency sketch (OnAttempt is sequential per transport), and — when
// verifying — its own per-app RTT log.
type ingestWorker struct {
	lat     *sketch.Sketch
	appRTTs map[string][]float64
	err     error
}

// RunIngestBench runs the fleet-scale ingest load once.
func RunIngestBench(o IngestBenchOptions) (*IngestBenchResult, error) {
	if o.Devices <= 0 {
		o.Devices = 10_000
	}
	if o.BatchesPerDevice <= 0 {
		o.BatchesPerDevice = 1
	}
	if o.RecordsPerBatch <= 0 {
		o.RecordsPerBatch = 8
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ServerShards <= 0 {
		o.ServerShards = 4
	}
	if o.Apps <= 0 {
		o.Apps = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}

	retain := crowd.RetainOff
	if o.RetainRecords {
		retain = crowd.RetainOn
	}
	srv, err := crowd.NewShardedServer(crowd.ServerOptions{
		SpoolDir:      o.SpoolDir,
		IngestShards:  o.IngestShards,
		RetainRecords: retain,
	}, o.ServerShards)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The live ops plane: /metrics on its own listener, up for exactly
	// the duration of the load.
	if o.MetricsAddr != "" {
		ln, err := net.Listen("tcp", o.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("mopeye: ingest bench metrics listener: %w", err)
		}
		ms := &http.Server{Handler: srv.MetricsHandler()}
		go ms.Serve(ln)
		defer ms.Close()
	}

	apps := make([]string, o.Apps)
	for i := range apps {
		apps[i] = fmt.Sprintf("bench.app%02d", i)
	}
	dst := netip.MustParseAddrPort("203.0.113.1:443")
	netTypes := []string{"WiFi", "LTE"}

	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	workers := make([]*ingestWorker, o.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Workers; w++ {
		iw := &ingestWorker{lat: sketch.New(0)}
		if o.VerifyExact {
			iw.appRTTs = make(map[string][]float64)
		}
		workers[w] = iw
		lo := w * o.Devices / o.Workers
		hi := (w + 1) * o.Devices / o.Workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			tr := NewHTTPTransport(ts.URL, HTTPTransportOptions{
				QueueSize:   64,
				BlockOnFull: true,
				OnAttempt: func(d time.Duration, err error) {
					iw.lat.Add(d.Seconds() * 1000)
				},
			})
			rng := rand.New(rand.NewSource(o.Seed + int64(w)))
			ctx := context.Background()
			sent := 0
			for dev := lo; dev < hi; dev++ {
				device := fmt.Sprintf("sim-%07d", dev)
				for j := 0; j < o.BatchesPerDevice; j++ {
					b := Batch{
						Device:  device,
						Key:     fmt.Sprintf("%s/b%d", device, j),
						Seq:     j,
						Records: make([]measure.Record, o.RecordsPerBatch),
					}
					for k := range b.Records {
						app := apps[rng.Intn(len(apps))]
						// Log-normal-ish RTTs: most connects tens of ms,
						// a heavy tail into seconds.
						ms := 8 + 60*rng.ExpFloat64()
						b.Records[k] = measure.Record{
							Kind:    measure.KindTCP,
							App:     app,
							UID:     10000 + dev%100,
							Dst:     dst,
							RTT:     time.Duration(ms * float64(time.Millisecond)),
							NetType: netTypes[dev%len(netTypes)],
						}
						if iw.appRTTs != nil {
							iw.appRTTs[app] = append(iw.appRTTs[app], b.Records[k].Millis())
						}
					}
					if err := tr.Upload(ctx, b); err != nil {
						iw.err = err
						tr.Close()
						return
					}
					sent++
					if o.DuplicateEvery > 0 && sent%o.DuplicateEvery == 0 {
						if err := tr.Upload(ctx, b); err != nil {
							iw.err = err
							tr.Close()
							return
						}
					}
				}
			}
			// Close drains the queue: the worker is not done until the
			// collector acknowledged its last batch.
			if err := tr.Close(); err != nil {
				iw.err = err
			}
			if st := tr.Stats(); st.Dropped > 0 || st.Failed > 0 {
				iw.err = fmt.Errorf("mopeye: ingest bench lost batches (dropped %d, failed %d)", st.Dropped, st.Failed)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	dur := time.Since(start)

	runtime.GC()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	lat := sketch.New(0)
	for _, iw := range workers {
		if iw.err != nil {
			return nil, iw.err
		}
		lat.Merge(iw.lat)
	}

	wantBatches := o.Devices * o.BatchesPerDevice
	wantRecords := wantBatches * o.RecordsPerBatch
	st := srv.Stats()
	if st.Batches != wantBatches || st.Records != wantRecords {
		return nil, fmt.Errorf("mopeye: ingest bench delivered %d batches / %d records, server holds %d / %d",
			wantBatches, wantRecords, st.Batches, st.Records)
	}
	if o.DuplicateEvery > 0 && st.Duplicates == 0 {
		return nil, fmt.Errorf("mopeye: ingest bench redelivered batches but server absorbed none")
	}

	res := &IngestBenchResult{
		Options:       o,
		Devices:       o.Devices,
		Batches:       wantBatches,
		Records:       wantRecords,
		Duration:      dur,
		RecordsPerSec: float64(wantRecords) / dur.Seconds(),
		BatchesPerSec: float64(wantBatches) / dur.Seconds(),
		UploadP50MS:   lat.Quantile(0.5),
		UploadP99MS:   lat.Quantile(0.99),
		DedupKeys:     srv.DedupKeys(),
		HeapGrowthMB:  float64(int64(msAfter.HeapAlloc)-int64(msBefore.HeapAlloc)) / (1 << 20),
		Server:        st,
	}

	if o.VerifyExact {
		res.Verified = true
		sum := srv.Summary()
		merged := make(map[string][]float64)
		for _, iw := range workers {
			for app, rtts := range iw.appRTTs {
				merged[app] = append(merged[app], rtts...)
			}
		}
		for app, rtts := range merged {
			sort.Float64s(rtts)
			exact := rtts[(len(rtts)-1)/2]
			qs, ok := sum.PerApp[app]
			if !ok || qs.N != uint64(len(rtts)) {
				return nil, fmt.Errorf("mopeye: ingest bench app %s: sent %d records, sketch holds %d", app, len(rtts), qs.N)
			}
			rel := relDiff(qs.P50MS, exact)
			if rel > res.MedianMaxRelErr {
				res.MedianMaxRelErr = rel
			}
		}
		// The sketch guarantees alpha relative error per rank; nearest
		// ranks straddling the probe add sampling slack on top.
		if res.MedianMaxRelErr > 10*sketch.DefaultAlpha {
			return nil, fmt.Errorf("mopeye: ingest bench sketched medians diverge: max rel err %.4f", res.MedianMaxRelErr)
		}
	}
	return res, nil
}

func relDiff(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := (got - want) / want
	if d < 0 {
		return -d
	}
	return d
}
