package mopeye

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/measure"
)

func newPhone(t *testing.T) *Phone {
	t.Helper()
	p, err := New(Options{
		Servers: []Server{
			{Domain: "api.example.com", RTTMillis: 40},
			{Domain: "cdn.example.com", RTTMillis: 12, Behaviour: Chatty},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.InstallApp(10001, "com.example.app")
	return p
}

func TestConnectMeasureEcho(t *testing.T) {
	p := newPhone(t)
	conn, err := p.Connect(10001, "api.example.com:443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("through the facade")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if err := conn.ReadFull(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("echo %q", buf)
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(p.TCPMeasurements()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tcp := p.TCPMeasurements()
	if len(tcp) != 1 {
		t.Fatalf("TCP measurements: %d", len(tcp))
	}
	if tcp[0].App != "com.example.app" {
		t.Errorf("app: %q", tcp[0].App)
	}
	if ms := tcp[0].RTT.Seconds() * 1000; ms < 38 || ms > 80 {
		t.Errorf("RTT %.1f ms, configured 40", ms)
	}
	// Connecting by domain produced one DNS measurement too.
	if len(p.DNSMeasurements()) != 1 {
		t.Errorf("DNS measurements: %d", len(p.DNSMeasurements()))
	}
}

func TestLiteralAddressSkipsDNS(t *testing.T) {
	p, err := New(Options{
		Servers: []Server{{Domain: "x.example", Addr: "203.0.113.7:80", RTTMillis: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.InstallApp(1, "a")
	conn, err := p.Connect(1, "203.0.113.7:80")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if len(p.DNSMeasurements()) != 0 {
		t.Error("literal address still triggered DNS")
	}
}

func TestGroundTruthMatchesMeasurement(t *testing.T) {
	p, err := New(Options{
		Servers: []Server{{Domain: "gt.example", Addr: "203.0.113.9:443", RTTMillis: 24}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.InstallApp(7, "com.gt")
	for i := 0; i < 5; i++ {
		conn, err := p.Connect(7, "203.0.113.9:443")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(p.TCPMeasurements()) < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	truth, err := p.GroundTruthRTTs("203.0.113.9:443")
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 5 {
		t.Fatalf("ground truth samples: %d", len(truth))
	}
	recs := p.TCPMeasurements()
	for i, r := range recs {
		ms := r.RTT.Seconds() * 1000
		if d := ms - truth[i]; d < -1.5 || d > 1.5 {
			t.Errorf("probe %d: MopEye %.2f vs tcpdump %.2f (paper: within 1 ms)", i, ms, truth[i])
		}
	}
}

func TestAppMedians(t *testing.T) {
	p := newPhone(t)
	for i := 0; i < 4; i++ {
		conn, err := p.Connect(10001, "api.example.com:443")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(p.TCPMeasurements()) < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	med := p.AppMedians(2)
	m, ok := med["com.example.app"]
	if !ok {
		t.Fatalf("app missing from medians: %v", med)
	}
	if m < 35 || m > 80 {
		t.Errorf("median %.1f ms", m)
	}
}

func TestSplitHostPort(t *testing.T) {
	cases := []struct {
		in   string
		host string
		port uint16
		ok   bool
	}{
		{"example.com:443", "example.com", 443, true},
		{"1.2.3.4:80", "1.2.3.4", 80, true},
		{"[::1]:443", "::1", 443, true},
		{"[2001:db8::2]:8080", "2001:db8::2", 8080, true},
		{"example.com", "", 0, false},       // bare host, no port
		{"::1:443", "", 0, false},           // unbracketed IPv6: ambiguous
		{"example.com:", "", 0, false},      // empty port
		{"example.com:0", "", 0, false},     // port zero
		{"example.com:70000", "", 0, false}, // port out of range
		{"example.com:https", "", 0, false}, // named port unsupported
		{":443", "", 0, false},              // empty host
		{"", "", 0, false},
	}
	for _, c := range cases {
		host, port, err := splitHostPort(c.in)
		if c.ok {
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.in, err)
				continue
			}
			if host != c.host || port != c.port {
				t.Errorf("%q: got (%q, %d), want (%q, %d)", c.in, host, port, c.host, c.port)
			}
		} else if err == nil {
			t.Errorf("%q: accepted as (%q, %d)", c.in, host, port)
		}
	}
}

func TestBadDestinations(t *testing.T) {
	p := newPhone(t)
	if _, err := p.Connect(10001, "noport.example.com"); err == nil {
		t.Error("missing port accepted")
	}
	if _, err := p.Connect(10001, "nosuch.example:443"); err == nil {
		t.Error("unresolvable name accepted")
	}
}

func TestEngineStatsExposed(t *testing.T) {
	p := newPhone(t)
	conn, err := p.Connect(10001, "api.example.com:443")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	st := p.EngineStats()
	if st.SYNs < 1 || st.Established < 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestStudyReports(t *testing.T) {
	s := NewStudy(0.01, 99)
	all := s.ReportAll()
	for _, want := range []string{
		"Figure 6", "Figure 7", "Figure 8", "Figure 9(a)", "Figure 9(b)",
		"Table 5", "Figure 10(a)", "Figure 10(b)", "Table 6", "Figure 11",
		"Case 1", "Case 2", "Whatsapp", "Jio",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if !strings.Contains(s.Summary(), "measurements") {
		t.Error("summary malformed")
	}
}

func TestChattyBehaviour(t *testing.T) {
	p := newPhone(t)
	conn, err := p.Connect(10001, "cdn.example.com:443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0, 0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if err := conn.ReadFull(buf); err != nil {
		t.Fatalf("chatty response: %v", err)
	}
}

func TestExportCSVRoundTripsThroughStudy(t *testing.T) {
	s := NewStudy(0.005, 11)
	var buf bytes.Buffer
	if err := s.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := measure.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := s.Dataset().Records
	if len(recs) != len(orig) {
		t.Fatalf("rows: %d want %d", len(recs), len(orig))
	}
	// Spot-check exact round trip of a few rows.
	for _, i := range []int{0, len(recs) / 2, len(recs) - 1} {
		if recs[i] != orig[i] {
			t.Errorf("row %d differs:\n got %+v\nwant %+v", i, recs[i], orig[i])
		}
	}
}

func TestPhoneExportCSV(t *testing.T) {
	p := newPhone(t)
	conn, err := p.Connect(10001, "api.example.com:443")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(3 * time.Second)
	for len(p.Measurements()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var buf bytes.Buffer
	if err := p.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := measure.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(p.Measurements()) {
		t.Errorf("exported %d of %d", len(recs), len(p.Measurements()))
	}
}

func TestAppTrafficViaFacade(t *testing.T) {
	p := newPhone(t)
	conn, err := p.Connect(10001, "api.example.com:443")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5000)
	if err := conn.ReadFull(buf); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for _, a := range p.AppTraffic() {
			if a.App == "com.example.app" && a.BytesUp >= 5000 && a.BytesDown >= 5000 {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("traffic not attributed: %+v", p.AppTraffic())
}

// TestDispatchBenchLoopback runs a miniature engine-ceiling sweep:
// the zero-delay loopback network must relay the full TCP flood and
// the UDP datagrams through the pooled relay, at one worker and at
// several.
func TestDispatchBenchLoopback(t *testing.T) {
	o := DispatchBenchOptions{
		WorkerCounts:  []int{1, 4},
		Apps:          2,
		ConnsPerApp:   2,
		EchoesPerConn: 5,
		PayloadBytes:  256,
		UDPPerConn:    3,
	}
	res, err := RunDispatchBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Errors != 0 {
			t.Errorf("workers=%d: %d flood errors", row.Workers, row.Errors)
		}
		if row.Packets == 0 || row.PacketsPerSec <= 0 {
			t.Errorf("workers=%d: no packets relayed: %+v", row.Workers, row)
		}
		// Loopback UDP cannot lose datagrams in transit; every one is
		// either relayed or accounted as a queue drop.
		if row.UDPRelayed+row.UDPDropped < o.Apps*o.ConnsPerApp*o.UDPPerConn {
			t.Errorf("workers=%d: udp relayed %d + dropped %d < sent %d",
				row.Workers, row.UDPRelayed, row.UDPDropped, o.Apps*o.ConnsPerApp*o.UDPPerConn)
		}
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

// TestDispatchBenchSubscribers runs the ceiling flood with live
// measurement subscribers attached: the stream must observe every
// record (or account the difference as ring drops), and the flood
// itself must be unaffected.
func TestDispatchBenchSubscribers(t *testing.T) {
	o := DispatchBenchOptions{
		WorkerCounts:  []int{4},
		Apps:          2,
		ConnsPerApp:   2,
		EchoesPerConn: 5,
		PayloadBytes:  256,
		Subscribers:   3,
	}
	res, err := RunDispatchBench(o)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Errors != 0 {
		t.Fatalf("flood errors with subscribers attached: %d", row.Errors)
	}
	// Each connection records one measurement; all three subscribers
	// see each of them, minus bounded drops.
	conns := o.Apps * o.ConnsPerApp
	if row.Streamed+row.StreamDropped != o.Subscribers*conns {
		t.Errorf("streamed %d + dropped %d != subscribers %d x records %d",
			row.Streamed, row.StreamDropped, o.Subscribers, conns)
	}
	if row.StreamDropped != 0 {
		t.Errorf("drops at measurement rates: %d", row.StreamDropped)
	}
}
