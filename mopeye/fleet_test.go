package mopeye

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/crowd"
	"repro/internal/measure"
)

// fleetRoster builds a deliberately heterogeneous 8-phone fleet: every
// phone has its own RTT profile, app mix, seed, worker count and
// workload size, so the e2e test exercises the scenario layer rather
// than 8 clones.
func fleetRoster(t *testing.T, phones int) []FleetPhone {
	t.Helper()
	out := make([]FleetPhone, phones)
	for i := 0; i < phones; i++ {
		i := i
		addr := fmt.Sprintf("198.51.100.%d:443", 100+i)
		uid := 40001 + i
		pkg := fmt.Sprintf("com.fleet.app%d", i%3) // app mixes overlap across phones
		conns := 2 + i%3
		out[i] = FleetPhone{
			Device: fmt.Sprintf("phone-%02d", i+1),
			Options: Options{
				Servers:          []Server{{Domain: fmt.Sprintf("svc%d.example", i), Addr: addr, RTTMillis: float64(5 + 7*i)}},
				DefaultRTTMillis: float64(10 + i),
				Workers:          1 + i%2,
				Seed:             int64(100 + i),
			},
			Apps: map[int]string{uid: pkg},
			Workload: func(ctx context.Context, p *Phone) error {
				for c := 0; c < conns; c++ {
					conn, err := p.Connect(uid, addr)
					if err != nil {
						return err
					}
					if _, err := conn.Write([]byte("ping")); err != nil {
						conn.Close()
						return err
					}
					buf := make([]byte, 4)
					if err := conn.ReadFull(buf); err != nil {
						conn.Close()
						return err
					}
					conn.Close()
				}
				return nil
			},
		}
	}
	return out
}

// jsonlBytes canonicalises and serialises records for byte-level
// comparison.
func jsonlBytes(t *testing.T, recs []Measurement) []byte {
	t.Helper()
	sorted := append([]measure.Record(nil), recs...)
	measure.SortCanonical(sorted)
	var buf bytes.Buffer
	if err := measure.WriteJSONL(&buf, sorted); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance e2e: 8 phones → HTTPTransport → collector server →
// Study() is record-identical to in-process crowd.Ingest over the
// fleet's own mirrors — under injected 503s, a stall, and
// commit-then-fail duplicate deliveries. Exactly-once after dedup.
func TestFleetE2EHTTPMatchesInProcess(t *testing.T) {
	srv, err := crowd.NewServer(crowd.ServerOptions{Token: "fleet-secret"})
	if err != nil {
		t.Fatal(err)
	}
	// Fault injection: the first upload waves hit refusals, stalls and
	// duplicate deliveries before the wire heals.
	flaky := &flakyHandler{inner: srv, script: []string{
		"503", "dup", "hang", "503", "dup", "503",
	}}
	ts := httptest.NewServer(flaky)
	defer ts.Close()
	transport := NewHTTPTransport(ts.URL, HTTPTransportOptions{
		Client:      &http.Client{Timeout: 50 * time.Millisecond},
		Token:       "fleet-secret",
		QueueSize:   64,
		MaxAttempts: 12, // the script can throw 6 consecutive faults at one batch
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
	})

	fleet, err := NewFleet(FleetOptions{
		Phones:    fleetRoster(t, 8),
		Transport: transport,
		Collector: CollectorOptions{BatchSize: 3}, // small batches: many wire trips
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Run(context.Background()); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if err := transport.Close(); err != nil {
		t.Fatalf("transport close: %v", err)
	}

	st := fleet.Stats()
	if st.Failed != 0 || st.Phones != 8 {
		t.Fatalf("fleet stats: %+v (statuses %+v)", st, fleet.PhoneStatuses())
	}
	if st.Records == 0 || st.Uploads < 8 {
		t.Fatalf("fleet produced too little: %+v", st)
	}
	tstats := transport.Stats()
	if tstats.Dropped != 0 || tstats.Failed != 0 {
		t.Fatalf("transport lost batches: %+v", tstats)
	}
	if tstats.Retried == 0 {
		t.Error("fault injection never forced a retry")
	}
	ss := srv.Stats()
	if ss.Duplicates == 0 {
		t.Error("fault injection never exercised dedup")
	}

	// Exactly-once: the server's dataset is byte-identical to the
	// fleet's merged local mirrors under canonical order.
	local := fleet.Records()
	remote := srv.Records()
	if len(remote) != len(local) {
		t.Fatalf("server holds %d records, fleet uploaded %d", len(remote), len(local))
	}
	lb, rb := jsonlBytes(t, local), jsonlBytes(t, remote)
	if !bytes.Equal(lb, rb) {
		t.Fatal("server dataset diverges from the fleet's records")
	}

	// And the study pipelines agree: Study() over the wire-delivered
	// dataset ≡ in-process crowd.Ingest over the fleet's mirrors.
	sorted := append([]measure.Record(nil), remote...)
	measure.SortCanonical(sorted)
	viaWire := NewStudyFrom(sorted).ReportAll()
	inProc := (&Study{}).reportFromIngest(crowd.Ingest(fleet.Records()))
	if viaWire != inProc {
		t.Error("§4.2 analysis diverges between wire-delivered and in-process datasets")
	}

	// Every device contributed and is visible to the analysis.
	ds := srv.Ingest()
	for i := 1; i <= 8; i++ {
		id := fmt.Sprintf("phone-%02d", i)
		if ds.DeviceByID(id) == nil {
			t.Errorf("device %s missing from ingested dataset", id)
		}
	}
}

// reportFromIngest runs ReportAll over an already-built dataset.
func (s *Study) reportFromIngest(ds *crowd.Dataset) string {
	return (&Study{ds: ds}).ReportAll()
}

// Fleet validation and error surfacing: a failing phone is reported by
// device, the rest of the fleet completes.
func TestFleetPerPhoneErrorSurfacing(t *testing.T) {
	if _, err := NewFleet(FleetOptions{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewFleet(FleetOptions{Phones: []FleetPhone{{Device: "x"}}}); err == nil {
		t.Error("workload-less phone accepted")
	}
	if _, err := NewFleet(FleetOptions{Phones: []FleetPhone{{
		Workload: func(context.Context, *Phone) error { return nil },
	}}}); err == nil {
		t.Error("stampless phone accepted")
	}

	boom := errors.New("boom")
	ok := func(ctx context.Context, p *Phone) error { return nil }
	fleet, err := NewFleet(FleetOptions{
		Phones: []FleetPhone{
			{Device: "good-1", Options: Options{Loopback: true}, Workload: ok},
			{Device: "bad", Options: Options{Loopback: true},
				Workload: func(ctx context.Context, p *Phone) error { return boom }},
			{Device: "good-2", Options: Options{Loopback: true}, Workload: ok},
		},
		Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = fleet.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("fleet error: %v", err)
	}
	st := fleet.Stats()
	if st.Failed != 1 {
		t.Errorf("failed phones: %d", st.Failed)
	}
	for _, ps := range fleet.PhoneStatuses() {
		wantErr := ps.Device == "bad"
		if (ps.Err != nil) != wantErr {
			t.Errorf("phone %s err = %v", ps.Device, ps.Err)
		}
	}
	// Run is once-only.
	if err := fleet.Run(context.Background()); err == nil {
		t.Error("second Run accepted")
	}
}

// A device-stamp collision across two phones must not dedup away
// either phone's uploads: keys stay unique per collector, and the
// analysis merges the records into one device.
func TestFleetDeviceStampCollision(t *testing.T) {
	srv, err := crowd.NewServer(crowd.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	transport := NewHTTPTransport(ts.URL, HTTPTransportOptions{})

	uid := 50001
	mk := func(seed int64) FleetPhone {
		addr := "198.51.100.200:443"
		return FleetPhone{
			Device: "shared-stamp",
			Options: Options{
				Servers: []Server{{Domain: "col.example", Addr: addr, RTTMillis: 8}},
				Seed:    seed,
			},
			Apps: map[int]string{uid: "com.fleet.shared"},
			Workload: func(ctx context.Context, p *Phone) error {
				for c := 0; c < 3; c++ {
					conn, err := p.Connect(uid, addr)
					if err != nil {
						return err
					}
					conn.Close()
				}
				return nil
			},
		}
	}
	fleet, err := NewFleet(FleetOptions{
		Phones:    []FleetPhone{mk(1), mk(2)},
		Transport: transport,
		Collector: CollectorOptions{BatchSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := transport.Close(); err != nil {
		t.Fatal(err)
	}
	ss := srv.Stats()
	if ss.Duplicates != 0 {
		t.Errorf("colliding stamps caused false dedup: %+v", ss)
	}
	local := fleet.Records()
	if ss.Records != len(local) {
		t.Errorf("server %d records, fleet %d", ss.Records, len(local))
	}
	ds := srv.Ingest()
	d := ds.DeviceByID("shared-stamp")
	if d == nil || d.Activity != len(local) {
		t.Errorf("shared device not merged: %+v", d)
	}
}
