package mopeye

import (
	"context"
	"fmt"
	"iter"
	"sync"

	"repro/internal/measure"
)

// This file is the push half of the public API: the streaming
// measurement pipeline. MopEye is a continuous monitor — measurements
// fall out of relaying as a side effect, indefinitely — so the
// natural consumption model is a subscription, not a poll. Subscribe
// yields a context-cancellable iterator over live measurements;
// Attach hands the stream to a Sink for the engine's lifetime. Both
// ride the store's broadcast layer: bounded per-subscriber rings that
// drop (and count) rather than ever stalling the relay workers. See
// DESIGN.md "Streaming measurement pipeline" for the bounded-drop
// contract.

// KindFilter selects which measurement kinds a subscription observes.
type KindFilter int

// Kind filters.
const (
	// AnyKind streams TCP and DNS measurements alike.
	AnyKind KindFilter = iota
	// TCPOnly streams per-app TCP connect() RTTs.
	TCPOnly
	// DNSOnly streams DNS transaction RTTs.
	DNSOnly
)

// Filter narrows a subscription. The zero value matches every
// measurement; each set field must match. Filtering happens on the
// producer side, so records a filter rejects neither occupy ring
// space nor count as drops.
type Filter struct {
	// Kind restricts to one measurement kind.
	Kind KindFilter
	// UID, when positive, restricts to one app UID. (DNS measurements
	// carry UID 0 — the resolver is system-wide — so filter those with
	// Kind instead.)
	UID int
	// App, when non-empty, restricts to one package name.
	App string
}

// predicate compiles the filter; nil means match-all.
func (f Filter) predicate() func(measure.Record) bool {
	if f == (Filter{}) {
		return nil
	}
	return func(r measure.Record) bool {
		switch f.Kind {
		case TCPOnly:
			if r.Kind != measure.KindTCP {
				return false
			}
		case DNSOnly:
			if r.Kind != measure.KindDNS {
				return false
			}
		}
		if f.UID > 0 && r.UID != f.UID {
			return false
		}
		if f.App != "" && r.App != f.App {
			return false
		}
		return true
	}
}

// Subscribe streams measurements as they are recorded. The
// subscription registers before Subscribe returns: every measurement
// recorded from this call onward is observed (earlier ones are not
// replayed), deterministically — no race between subscribing and
// starting the workload. The returned iterator blocks between
// measurements and ends when ctx is cancelled or the phone is closed;
// a close delivers every measurement already recorded before ending
// the stream, so draining a subscription observes exactly what
// Measurements() snapshots, in the same order.
//
// The iterator is single-use: it drains this one subscription, and
// ending the range (break, cancel, close) ends the subscription. The
// subscription's ring is bounded; if the consumer falls behind at
// sustained measurement rates, records are dropped for that
// subscriber only (never blocking the engine) and counted in
// StreamDrops.
//
//	ctx, cancel := context.WithCancel(context.Background())
//	defer cancel()
//	for m := range phone.Subscribe(ctx, mopeye.Filter{Kind: mopeye.TCPOnly}) {
//		fmt.Printf("%s -> %s: %v\n", m.App, m.Dst, m.RTT)
//	}
func (p *Phone) Subscribe(ctx context.Context, f Filter) iter.Seq[Measurement] {
	sub := p.bed.Store.Subscribe(0, f.predicate())
	if ctx != nil {
		// Detach on cancellation even if the iterator is never ranged
		// (or abandoned between Subscribe and range): an un-ranged
		// subscription must not keep filling its ring — and inflating
		// the drop counters — for the phone's lifetime.
		context.AfterFunc(ctx, sub.Close)
	}
	return sub.Seq(ctx)
}

// StreamDrops reports the total measurements dropped across all
// subscribers (live and closed) because a ring was full — the
// observable half of the pipeline's bounded-drop contract. Zero in
// any healthy deployment.
func (p *Phone) StreamDrops() uint64 { return p.bed.Store.DroppedRecords() }

// attachedSink is one engine-lifetime sink with its drain state.
type attachedSink struct {
	sink Sink

	mu  sync.Mutex
	err error // first Accept/Flush/Close error, kept for Err
}

func (as *attachedSink) setErr(err error) {
	as.mu.Lock()
	if as.err == nil {
		as.err = err
	}
	as.mu.Unlock()
}

// finish flushes and closes the sink at phone teardown.
func (as *attachedSink) finish() {
	if err := as.sink.Flush(); err != nil {
		as.setErr(err)
	}
	if err := as.sink.Close(); err != nil {
		as.setErr(err)
	}
}

// Attach registers a Sink for the rest of the engine's lifetime:
// every measurement recorded from now on is delivered to
// sink.Accept on a dedicated drain goroutine, and Phone.Close flushes
// and closes the sink after the final measurement. If Accept returns
// an error the sink stops receiving; the error is reported by the
// returned handle's Err after close.
func (p *Phone) Attach(sink Sink) (*Attached, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("mopeye: Attach on a closed phone")
	}
	sub := p.bed.Store.Subscribe(0, nil)
	as := &attachedSink{sink: sink}
	p.sinks = append(p.sinks, as)
	p.sinkWG.Add(1)
	p.mu.Unlock()

	go func() {
		defer p.sinkWG.Done()
		for {
			r, ok := sub.Next(nil)
			if !ok {
				return
			}
			if err := sink.Accept(r); err != nil {
				as.setErr(err)
				sub.Close()
				return
			}
		}
	}()
	return &Attached{as: as}, nil
}

// Attached is the handle Attach returns.
type Attached struct {
	as *attachedSink
}

// Err reports the first error the sink returned from Accept, Flush or
// Close. Meaningful once the phone is closed.
func (a *Attached) Err() error {
	a.as.mu.Lock()
	defer a.as.mu.Unlock()
	return a.as.err
}

// Run blocks until ctx is cancelled or the phone is closed elsewhere,
// then closes the phone (idempotently) and returns ctx's cause — the
// context-driven lifecycle for engine-as-a-service deployments:
//
//	go phone.Run(ctx) // phone lives exactly as long as ctx
func (p *Phone) Run(ctx context.Context) error {
	select {
	case <-ctx.Done():
		p.Close()
		return context.Cause(ctx)
	case <-p.done:
		return nil
	}
}
