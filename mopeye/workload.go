package mopeye

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/testbed"
)

// This file is the trace-driven workload layer: canned, seeded traffic
// generators shaped like the app behaviours MopEye's deployment saw —
// web-browse bursts, chat keepalives, video buffering, background
// sync. Each generator returns a FleetPhone.Workload, paces itself on
// the phone's own clock (so it runs correctly under simulated time),
// and tolerates connect/resolve failures: under an adverse network
// profile the point is to keep generating traffic while the engine
// counts what the network did to it, not to abort the phone.

// WorkloadOptions parameterises the canned workload generators.
type WorkloadOptions struct {
	// Sites are the destinations the workload visits — "domain:port"
	// (resolved through the phone's DNS, producing DNS measurements) or
	// literal "ip:port" (no DNS dependency; keeps TCP traffic flowing
	// even under a DNS-blackhole regime). At least one is required.
	Sites []string
	// UID is the app identity the traffic is attributed to (default
	// 10001; install the matching package first).
	UID int
	// Duration bounds the workload, measured on the phone's clock
	// (default 2s).
	Duration time.Duration
	// Seed drives the generator's randomness — site choice, sizes,
	// pacing (default 1). Same seed, same trace.
	Seed int64
}

func (o WorkloadOptions) withDefaults() WorkloadOptions {
	if o.UID == 0 {
		o.UID = 10001
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// workloadResolveTimeout bounds one workload-side DNS lookup. Shorter
// than the stack's default so a dead resolver costs the trace a
// bounded stall per visit (the failure is still fully counted by the
// engine), not ten seconds.
const workloadResolveTimeout = 600 * time.Millisecond

// workloadConnectTimeout bounds one workload-side TCP connect.
const workloadConnectTimeout = 5 * time.Second

// WebBrowseWorkload models page loads: bursts of 2–4 short
// connections (a page and its subresources), each a small
// request/response exchange, separated by think time.
func WebBrowseWorkload(o WorkloadOptions) func(context.Context, *Phone) error {
	o = o.withDefaults()
	return func(ctx context.Context, p *Phone) error {
		w := newWalker(o, p)
		for w.more(ctx) {
			burst := 2 + w.rng.Intn(3)
			for i := 0; i < burst && w.more(ctx); i++ {
				w.exchange(w.site(), 200+w.rng.Intn(600), 1)
			}
			w.pause(ctx, 100*time.Millisecond, 300*time.Millisecond)
		}
		return ctx.Err()
	}
}

// ChatKeepaliveWorkload models a messaging app: a long-lived
// connection carrying small periodic keepalives, reconnecting every
// few beats (and on error) so the opportunistic measurement keeps
// sampling the path.
func ChatKeepaliveWorkload(o WorkloadOptions) func(context.Context, *Phone) error {
	o = o.withDefaults()
	return func(ctx context.Context, p *Phone) error {
		w := newWalker(o, p)
		for w.more(ctx) {
			c := w.connect(w.site())
			beats := 2 + w.rng.Intn(3)
			for i := 0; c != nil && i < beats && w.more(ctx); i++ {
				if !w.roundTrip(c, 20+w.rng.Intn(40)) {
					c = nil
					break
				}
				w.pause(ctx, 80*time.Millisecond, 200*time.Millisecond)
			}
			if c != nil {
				c.Close()
			} else {
				w.pause(ctx, 50*time.Millisecond, 150*time.Millisecond)
			}
		}
		return ctx.Err()
	}
}

// VideoBufferWorkload models streaming playback: fetch a few large
// chunks back to back (buffering), then idle while the buffer drains,
// on a fresh connection per buffering cycle.
func VideoBufferWorkload(o WorkloadOptions) func(context.Context, *Phone) error {
	o = o.withDefaults()
	return func(ctx context.Context, p *Phone) error {
		w := newWalker(o, p)
		for w.more(ctx) {
			chunks := 2 + w.rng.Intn(2)
			w.exchange(w.site(), 8<<10, chunks)
			w.pause(ctx, 150*time.Millisecond, 300*time.Millisecond)
		}
		return ctx.Err()
	}
}

// BackgroundSyncWorkload models periodic app sync: long idle, then a
// DNS lookup and one bulk upload-ish exchange.
func BackgroundSyncWorkload(o WorkloadOptions) func(context.Context, *Phone) error {
	o = o.withDefaults()
	return func(ctx context.Context, p *Phone) error {
		w := newWalker(o, p)
		for w.more(ctx) {
			w.exchange(w.site(), 4<<10, 1)
			w.pause(ctx, 250*time.Millisecond, 500*time.Millisecond)
		}
		return ctx.Err()
	}
}

// workloadRegistry maps CLI names to generators, the spelling
// `paperbench -exp scenarios -workloads web,video` uses.
var workloadRegistry = map[string]func(WorkloadOptions) func(context.Context, *Phone) error{
	"web":   WebBrowseWorkload,
	"chat":  ChatKeepaliveWorkload,
	"video": VideoBufferWorkload,
	"sync":  BackgroundSyncWorkload,
}

// WorkloadNames lists the canned workload generators, sorted.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloadRegistry))
	for n := range workloadRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WorkloadByName returns the named canned generator applied to o.
func WorkloadByName(name string, o WorkloadOptions) (func(context.Context, *Phone) error, error) {
	gen, ok := workloadRegistry[name]
	if !ok {
		return nil, fmt.Errorf("mopeye: unknown workload %q (have %v)", name, WorkloadNames())
	}
	return gen(o), nil
}

// walker is the shared machinery under every generator: a seeded RNG,
// a phone-clock deadline, a round-robin site picker, and exchange
// helpers that swallow (but count) network failures.
type walker struct {
	o    WorkloadOptions
	p    *Phone
	rng  *rand.Rand
	end  int64 // phone-clock nanos
	next int
	errs int
}

func newWalker(o WorkloadOptions, p *Phone) *walker {
	w := &walker{
		o:   o,
		p:   p,
		rng: rand.New(rand.NewSource(o.Seed)),
		end: p.bed.Clk.Nanos() + int64(o.Duration),
	}
	w.next = w.rng.Intn(len(o.Sites))
	return w
}

func (w *walker) more(ctx context.Context) bool {
	return ctx.Err() == nil && w.p.bed.Clk.Nanos() < w.end
}

// site cycles through the configured sites from a seeded starting
// phase. Round robin rather than uniform draws so every site — in
// particular a literal-address one that keeps TCP flowing under a dead
// resolver — is visited even in a short run.
func (w *walker) site() string {
	s := w.o.Sites[w.next%len(w.o.Sites)]
	w.next++
	return s
}

// pause sleeps a uniform duration in [lo, hi] on the phone's clock,
// cut short by context cancellation.
func (w *walker) pause(ctx context.Context, lo, hi time.Duration) {
	d := lo
	if hi > lo {
		d += time.Duration(w.rng.Int63n(int64(hi - lo)))
	}
	select {
	case <-w.p.bed.Clk.After(d):
	case <-ctx.Done():
	}
}

// dst resolves a site to an address: literal "ip:port" directly,
// "domain:port" through the phone's DNS with a bounded timeout. Every
// visit resolves afresh — no app-side cache — so DNS-regime scenarios
// keep sampling the resolver path. ok=false means the visit is
// abandoned — counted here, and the failure's datagrams are counted by
// the engine.
func (w *walker) dst(site string) (netip.AddrPort, bool) {
	if ap, err := netip.ParseAddrPort(site); err == nil {
		return ap, true
	}
	host, port, err := splitHostPort(site)
	if err != nil {
		w.errs++
		return netip.AddrPort{}, false
	}
	res, err := w.p.bed.Phone.Resolve(w.o.UID, testbed.DNSAddr, host, workloadResolveTimeout)
	if err != nil {
		w.errs++
		return netip.AddrPort{}, false
	}
	return netip.AddrPortFrom(res.Addr, port), true
}

// connect opens a TCP connection to the site, nil on failure.
func (w *walker) connect(site string) *Conn {
	ap, ok := w.dst(site)
	if !ok {
		return nil
	}
	c, err := w.p.bed.Phone.Connect(w.o.UID, ap, workloadConnectTimeout)
	if err != nil {
		w.errs++
		return nil
	}
	return &Conn{c: c}
}

// roundTrip writes size random bytes and reads the echo back,
// reporting success. On failure the connection is closed.
func (w *walker) roundTrip(c *Conn, size int) bool {
	buf := make([]byte, size)
	w.rng.Read(buf)
	if _, err := c.Write(buf); err != nil {
		w.errs++
		c.Close()
		return false
	}
	if err := c.ReadFull(make([]byte, size)); err != nil {
		w.errs++
		c.Close()
		return false
	}
	return true
}

// exchange is one visit: connect, rounds echo round trips of size
// bytes each, close.
func (w *walker) exchange(site string, size, rounds int) {
	c := w.connect(site)
	if c == nil {
		return
	}
	defer c.Close()
	for i := 0; i < rounds; i++ {
		if !w.roundTrip(c, size) {
			return
		}
	}
}
