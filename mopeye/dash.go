package mopeye

import (
	"context"
	"fmt"
	"io"
	"iter"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/metrics"
)

// This file is the live dashboard behind `mopeye -dash`: the paper's
// Figure 1a all-app view as a terminal (and optionally HTTP) surface
// that refreshes while the engine runs. The dashboard is an ordinary
// measurement subscriber — it rides Phone.Subscribe's bounded ring, so
// a stalled terminal can never stall a relay worker — and its refresh
// is paced by the phone's own clock, so a phone running simulated time
// renders one frame per simulated interval, not per wall interval.

// DashPhone is a phone the dashboard can attach to: the simulated
// Phone and the real-plane RealPhone both satisfy it. The unexported
// clock accessor keeps the set closed — the dashboard's pacing
// contract (frames on the phone's time source) is not implementable
// from outside the package.
type DashPhone interface {
	// Subscribe taps the live measurement stream.
	Subscribe(ctx context.Context, f Filter) iter.Seq[Measurement]
	// EngineStats reads the engine's counters for the header gauges.
	EngineStats() engine.Stats
	// StreamDrops reports records lost to full subscriber rings.
	StreamDrops() uint64
	// WriteMetrics renders the phone's Prometheus exposition (the
	// dashboard's HTTP mode serves it at /metrics).
	WriteMetrics(w io.Writer) error

	// dashClock is the time source frames are paced on.
	dashClock() clock.Clock
}

func (p *Phone) dashClock() clock.Clock     { return p.bed.Clk }
func (p *RealPhone) dashClock() clock.Clock { return p.clk }

// DashOptions configures a dashboard.
type DashOptions struct {
	// Interval is the refresh period, measured on the phone's clock.
	// Default 1s.
	Interval time.Duration
	// Out receives the rendered frames. Default os.Stdout.
	Out io.Writer
	// Addr, when non-empty, additionally serves the dashboard over
	// HTTP: GET / returns the current frame as text, GET /metrics the
	// phone's Prometheus exposition. Use "127.0.0.1:0" for an
	// ephemeral port (see Dash.Addr).
	Addr string
	// Apps caps the per-app rows, busiest first. Default 12.
	Apps int
	// Width is the RTT sparkline window (one cell per measurement,
	// newest right). Default 32.
	Width int
	// Plain suppresses the ANSI home-and-clear between frames —
	// for pipes, logs, and tests.
	Plain bool
}

// Dash is a live per-app RTT dashboard attached to one phone.
// Construct with NewDash, drive with Run; Addr reports the HTTP
// endpoint when one was requested.
type Dash struct {
	p  DashPhone
	o  DashOptions
	ln net.Listener

	mu     sync.Mutex
	apps   map[string]*dashApp
	frames int
}

// dashApp is one app's rolling view.
type dashApp struct {
	tcp    int       // TCP measurements seen
	dns    int       // DNS measurements seen
	last   float64   // most recent RTT (ms)
	window []float64 // last Width RTTs, oldest first
}

// NewDash validates the options and, when Addr is set, binds the HTTP
// listener (so an ephemeral port is known before Run starts).
func NewDash(p DashPhone, o DashOptions) (*Dash, error) {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Apps <= 0 {
		o.Apps = 12
	}
	if o.Width <= 0 {
		o.Width = 32
	}
	d := &Dash{p: p, o: o, apps: make(map[string]*dashApp)}
	if o.Addr != "" {
		ln, err := net.Listen("tcp", o.Addr)
		if err != nil {
			return nil, fmt.Errorf("mopeye: dash listener: %w", err)
		}
		d.ln = ln
	}
	return d, nil
}

// Addr returns the HTTP endpoint's address ("" when DashOptions.Addr
// was empty).
func (d *Dash) Addr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Run subscribes to the phone and renders frames until ctx is
// cancelled or the phone closes, then renders one final frame and
// returns. Call once.
func (d *Dash) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if d.ln != nil {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, d.frame(true))
		})
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", metrics.ContentType)
			_ = d.p.WriteMetrics(w)
		})
		hs := &http.Server{Handler: mux}
		go hs.Serve(d.ln)
		defer hs.Close()
	}

	// The dashboard is an ordinary subscriber: the stream ends when the
	// phone closes, which is also the dashboard's natural end.
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stream := d.p.Subscribe(subCtx, Filter{})
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		for m := range stream {
			d.observe(m)
		}
	}()

	clk := d.p.dashClock()
	for {
		select {
		case <-ctx.Done():
			cancel()
			<-streamDone // drain what is ringed before the final frame
			d.render()
			return nil
		case <-streamDone:
			d.render()
			return nil
		case <-clk.After(d.o.Interval):
			d.render()
		}
	}
}

// observe folds one measurement into the per-app state.
func (d *Dash) observe(m Measurement) {
	d.mu.Lock()
	defer d.mu.Unlock()
	name := m.App
	if name == "" {
		name = "(unattributed)"
	}
	a := d.apps[name]
	if a == nil {
		a = &dashApp{}
		d.apps[name] = a
	}
	if m.Kind == measure.KindDNS {
		a.dns++
	} else {
		a.tcp++
	}
	a.last = m.Millis()
	a.window = append(a.window, a.last)
	if len(a.window) > d.o.Width {
		a.window = a.window[len(a.window)-d.o.Width:]
	}
}

// render writes one frame to Out.
func (d *Dash) render() {
	fmt.Fprint(d.o.Out, d.frame(d.o.Plain))
}

// frame renders the current state; plain frames carry no ANSI codes.
func (d *Dash) frame(plain bool) string {
	st := d.p.EngineStats()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frames++

	var b strings.Builder
	if !plain {
		b.WriteString("\x1b[H\x1b[2J") // home + clear
	}
	fmt.Fprintf(&b, "mopeye dash · frame %d · %s\n",
		d.frames, d.p.dashClock().Now().Format("15:04:05.000"))
	fmt.Fprintf(&b, "engine: %d pkts in / %d out · %d syns · %d established · %d connect-fail\n",
		st.PacketsFromTun, st.PacketsToTun, st.SYNs, st.Established, st.ConnectFailures)
	fmt.Fprintf(&b, "dns: %d measured / %d timeouts · udp: %d relayed / %d dropped · stream-drops: %d\n",
		st.DNSMeasurements, st.DNSTimeouts, st.UDPRelayed, st.UDPDropped, d.p.StreamDrops())

	names := make([]string, 0, len(d.apps))
	for n := range d.apps {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ai, aj := d.apps[names[i]], d.apps[names[j]]
		if ai.tcp+ai.dns != aj.tcp+aj.dns {
			return ai.tcp+ai.dns > aj.tcp+aj.dns
		}
		return names[i] < names[j]
	})
	if len(names) > d.o.Apps {
		names = names[:d.o.Apps]
	}
	for _, n := range names {
		a := d.apps[n]
		fmt.Fprintf(&b, "  %-36s %4d tcp %3d dns  last %7.1f ms  %s\n",
			n, a.tcp, a.dns, a.last, sparkline(a.window))
	}
	return b.String()
}

// sparkRunes is the 8-level bar alphabet, lowest first.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline scales a window of RTTs into bar runes, min to max.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}
