package mopeye

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/measure"
	"repro/internal/metrics"
)

// This file is the multi-phone scenario layer: the paper's deployment
// is thousands of phones uploading into one collector, and Fleet is
// the API that finally exercises that shape in-process — N simulated
// phones with heterogeneous per-phone options (RTT profiles, app
// mixes, seeds, worker counts), each running its own workload, all
// fanning their Collector uploads into one shared Transport. The
// fleet owns phone lifecycle (construct, attach, run, close — per
// phone), aggregates stats, and surfaces per-phone errors without
// letting one phone's failure stop the rest.

// FleetPhone describes one phone of a fleet.
type FleetPhone struct {
	// Device is the phone's device stamp in the crowdsourced dataset.
	// Required, and usually unique — two FleetPhones may share a stamp
	// (a reinstalled device), in which case their records merge into
	// one device at analysis time while their uploads stay
	// independently keyed.
	Device string
	// Options configures the phone; fully heterogeneous across the
	// fleet (RTT profiles, servers, seeds, worker counts...).
	Options Options
	// Apps maps UID → package to install before the workload runs.
	Apps map[int]string
	// Workload drives the phone's traffic; the fleet closes the phone
	// when it returns. Required.
	Workload func(ctx context.Context, p *Phone) error
}

// FleetOptions configures a fleet.
type FleetOptions struct {
	// Phones is the fleet roster. At least one is required.
	Phones []FleetPhone
	// Transport is the shared upload path every phone's Collector
	// ships through (one HTTPTransport, one collector server — the
	// paper's fan-in). nil keeps each phone's uploads in-process; the
	// merged dataset is still available via Records/Study. The fleet
	// never closes the Transport — its owner does, after Run returns.
	Transport Transport
	// Collector is the per-phone upload policy template; Device (and
	// Transport) are overridden per phone.
	Collector CollectorOptions
	// Concurrency bounds how many phones run at once; 0 or less runs
	// the whole fleet concurrently.
	Concurrency int
}

// FleetPhoneStatus is one phone's outcome.
type FleetPhoneStatus struct {
	Device string
	// Records and Uploads are what this phone's collector shipped.
	Records int
	Uploads int
	// Elapsed is the workload's duration measured on the phone's own
	// clock. On a wall-clock phone it tracks real time; on a phone
	// running simulated time it reports simulated time — the duration
	// the device experienced, which is what fleet-level throughput and
	// pacing arithmetic wants. Zero when the phone failed to construct.
	Elapsed time.Duration
	// Err is the phone's failure: construction, workload, or sink
	// (first of them to occur). nil on success.
	Err error
}

// FleetStats aggregates a completed run.
type FleetStats struct {
	Phones  int
	Failed  int
	Records int
	Uploads int
	// Duration is the wall-clock span of Run as the host observed it:
	// construction, workloads, and teardown across every phone. It is
	// deliberately wall time — the cost of running the fleet — and says
	// nothing about time as the phones experienced it.
	Duration time.Duration
	// PhoneTime is the longest per-phone workload duration measured on
	// the phones' own clocks (max over FleetPhoneStatus.Elapsed). Under
	// simulated time this is the number that means something; comparing
	// it with Duration shows the simulation speed-up.
	PhoneTime time.Duration
}

// Fleet runs N phones into one collector. Construct with NewFleet,
// drive with Run (once), then read Stats, PhoneStatuses, Records, or
// Study.
type Fleet struct {
	o FleetOptions

	mu         sync.Mutex
	ran        bool
	status     []FleetPhoneStatus
	collectors []*Collector
	dur        time.Duration

	// metricsOnce builds the lazy observability registry; see
	// metrics.go.
	metricsOnce sync.Once
	metricsReg  *metrics.Registry
}

// NewFleet validates the roster and builds a fleet.
func NewFleet(o FleetOptions) (*Fleet, error) {
	if len(o.Phones) == 0 {
		return nil, errors.New("mopeye: fleet without phones")
	}
	for i, p := range o.Phones {
		if p.Device == "" {
			return nil, fmt.Errorf("mopeye: fleet phone %d without a device stamp", i)
		}
		if p.Workload == nil {
			return nil, fmt.Errorf("mopeye: fleet phone %q without a workload", p.Device)
		}
	}
	return &Fleet{o: o}, nil
}

// Run constructs and runs every phone: build, attach a device-stamped
// Collector on the shared Transport, install apps, run the workload,
// close (which flushes the final batch). Phones run concurrently up
// to Concurrency; one phone's failure never stops another. Run
// returns the joined per-phone errors (nil when every phone
// succeeded) and may be called once.
func (f *Fleet) Run(ctx context.Context) error {
	f.mu.Lock()
	if f.ran {
		f.mu.Unlock()
		return errors.New("mopeye: fleet already ran")
	}
	f.ran = true
	f.status = make([]FleetPhoneStatus, len(f.o.Phones))
	f.collectors = make([]*Collector, len(f.o.Phones))
	f.mu.Unlock()

	sem := make(chan struct{}, f.concurrency())
	start := time.Now()
	var wg sync.WaitGroup
	for i := range f.o.Phones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f.runPhone(ctx, i)
		}(i)
	}
	wg.Wait()

	f.mu.Lock()
	defer f.mu.Unlock()
	f.dur = time.Since(start)
	var errs []error
	for _, st := range f.status {
		if st.Err != nil {
			errs = append(errs, st.Err)
		}
	}
	return errors.Join(errs...)
}

func (f *Fleet) concurrency() int {
	if f.o.Concurrency > 0 {
		return f.o.Concurrency
	}
	return len(f.o.Phones)
}

// runPhone is one phone's full lifecycle; its outcome lands in
// f.status[i].
func (f *Fleet) runPhone(ctx context.Context, i int) {
	spec := f.o.Phones[i]
	st := FleetPhoneStatus{Device: spec.Device}
	defer func() {
		f.mu.Lock()
		f.status[i] = st
		f.mu.Unlock()
	}()
	fail := func(err error) {
		if st.Err == nil && err != nil {
			st.Err = fmt.Errorf("phone %q: %w", spec.Device, err)
		}
	}

	phone, err := New(spec.Options)
	if err != nil {
		fail(err)
		return
	}
	colOpts := f.o.Collector
	colOpts.Device = spec.Device
	colOpts.Transport = f.o.Transport
	col := NewCollector(colOpts)
	f.mu.Lock()
	f.collectors[i] = col
	f.mu.Unlock()
	attached, err := phone.Attach(col)
	if err != nil {
		phone.Close()
		fail(err)
		return
	}
	for uid, pkg := range spec.Apps {
		phone.InstallApp(uid, pkg)
	}
	// The workload is timed on the phone's own clock, not time.Now():
	// under an injected virtual clock the two diverge wildly, and the
	// duration the device experienced is the one Elapsed reports.
	t0 := phone.bed.Clk.Nanos()
	werr := spec.Workload(ctx, phone)
	st.Elapsed = time.Duration(phone.bed.Clk.Nanos() - t0)
	// Close flushes the collector's final batch through the attach
	// drain before returning.
	phone.Close()
	fail(werr)
	fail(attached.Err())
	st.Records = len(col.Records())
	st.Uploads = col.Uploads()
}

// Stats aggregates the run.
func (f *Fleet) Stats() FleetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FleetStats{Phones: len(f.o.Phones), Duration: f.dur}
	for _, st := range f.status {
		if st.Err != nil {
			s.Failed++
		}
		s.Records += st.Records
		s.Uploads += st.Uploads
		if st.Elapsed > s.PhoneTime {
			s.PhoneTime = st.Elapsed
		}
	}
	return s
}

// PhoneStatuses returns every phone's outcome, in roster order.
func (f *Fleet) PhoneStatuses() []FleetPhoneStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FleetPhoneStatus(nil), f.status...)
}

// Records merges every phone's uploaded records (the local mirrors) in
// canonical order — the fleet-side copy of the dataset the collector
// server assembled, directly comparable record for record.
func (f *Fleet) Records() []Measurement {
	f.mu.Lock()
	cols := append([]*Collector(nil), f.collectors...)
	f.mu.Unlock()
	var recs []measure.Record
	for _, c := range cols {
		if c != nil {
			recs = append(recs, c.Records()...)
		}
	}
	measure.SortCanonical(recs)
	return recs
}

// Study runs the §4.2 analysis pipeline over the fleet's merged
// records.
func (f *Fleet) Study() *Study {
	return NewStudyFrom(f.Records())
}
