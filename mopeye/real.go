package mopeye

import (
	"context"
	"fmt"
	"io"
	"iter"
	"net/netip"
	"os/user"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/metrics"
	"repro/internal/procnet"
	"repro/internal/resource"
	"repro/internal/sockets"
	"repro/internal/tun"
	"repro/internal/tun/lintun"
	"repro/internal/upstream"
)

// RealOptions configures a phone on the real Linux data plane: the
// engine reads packets from a kernel TUN device instead of the
// emulated one, relays TCP flows out through kernel sockets (directly
// or via a SOCKS5 proxy), relays UDP through per-datagram kernel
// sockets, and attributes flows by parsing the live /proc/net tables.
//
// Requires a build with `-tags realtun` on linux and a process
// privileged enough to open /dev/net/tun (CAP_NET_ADMIN). Bringing the
// interface up, addressing it, and routing traffic into it is the
// operator's job — see the README quickstart.
type RealOptions struct {
	// TunName is the TUN device name to create or attach (e.g.
	// "mopeye0"); empty lets the kernel assign one.
	TunName string
	// Upstream selects where relayed TCP flows exit: "" or "direct"
	// for plain kernel sockets, "socks5://[user:pass@]host:port" to
	// relay through a SOCKS5 proxy.
	Upstream string
	// DialTimeout bounds each upstream connect (default 10s).
	DialTimeout time.Duration
	// UDPTimeout bounds each relayed datagram's response wait
	// (default 5s).
	UDPTimeout time.Duration
	// Engine overrides the engine configuration; nil means the paper's
	// shipped configuration.
	Engine *engine.Config
	// Workers, ReadBatch and ReadBatchAuto mirror Options: worker count
	// and read-burst tuning for the multi-worker pipeline.
	Workers       int
	ReadBatch     int
	ReadBatchAuto bool
	// ProcRoot is the proc mount to attribute flows from; empty means
	// "/proc".
	ProcRoot string
	// UDPTransport overrides the UDP exit (the real ceiling bench
	// counts-and-drops instead of re-emitting kernel datagrams); nil
	// means per-datagram kernel sockets.
	UDPTransport func(local, dst netip.AddrPort, payload []byte, deliver func([]byte))
}

// RealPhone is MopEye attached to a real TUN device. The measurement
// pipeline is the same one the simulated Phone drives — same engine,
// same store, same export formats — only the substrate differs.
type RealPhone struct {
	dev   *lintun.TUN
	eng   *engine.Engine
	store *measure.Store
	pm    *procnet.PackageManager
	clk   clock.Clock

	closeOnce sync.Once

	// metricsOnce builds the lazy observability registry; see
	// metrics.go.
	metricsOnce sync.Once
	metricsReg  *metrics.Registry
}

// NewReal opens the TUN device and starts the engine against the real
// data plane. Fails with lintun.ErrUnsupported on builds without
// `-tags realtun`.
func NewReal(o RealOptions) (*RealPhone, error) {
	spec, err := upstream.ParseSpec(o.Upstream)
	if err != nil {
		return nil, err
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.UDPTimeout <= 0 {
		o.UDPTimeout = 5 * time.Second
	}
	dialer, err := spec.Dialer(o.DialTimeout)
	if err != nil {
		return nil, err
	}

	dev, err := lintun.Open(o.TunName)
	if err != nil {
		return nil, err
	}

	clk := clock.NewReal()
	reader := procnet.NewReaderFrom(procnet.ProcFS{Root: o.ProcRoot}, clk, procnet.ZeroParseCost(), 1)
	pm := procnet.NewPackageManager()
	pm.SetFallback(userName)

	// No emulated network behind the provider: every flow exits through
	// the upstream dialer (TCP) and the kernel UDP transport.
	prov := sockets.NewProvider(nil, clk, netip.IPv4Unspecified(), sockets.CostModel{}, 1)
	prov.SetDialer(dialer)
	if o.UDPTransport != nil {
		prov.SetUDPTransport(sockets.UDPTransport(o.UDPTransport))
	} else {
		prov.SetUDPTransport(upstream.KernelUDP(o.UDPTimeout))
	}

	cfg := engine.Default()
	if o.Engine != nil {
		cfg = *o.Engine
	}
	if o.Workers > 0 {
		cfg.Workers = o.Workers
	}
	if o.ReadBatch > 0 {
		cfg.ReadBatch = o.ReadBatch
	}
	if o.ReadBatchAuto {
		cfg.ReadBatchAuto = true
	}

	store := measure.NewStore()
	eng := engine.New(cfg, engine.Deps{
		Clock:    clk,
		Device:   dev,
		Sockets:  prov,
		ProcNet:  reader,
		Packages: pm,
		Store:    store,
		Meter:    resource.NewMeter(resource.DefaultCosts(), 12),
	})
	eng.Start()
	return &RealPhone{dev: dev, eng: eng, store: store, pm: pm, clk: clk}, nil
}

// userName maps a host UID to its account name, the closest Linux
// analogue of Android's per-app UIDs; unresolvable UIDs render as
// "uid:N" so records stay attributable.
func userName(uid int) (string, bool) {
	if u, err := user.LookupId(strconv.Itoa(uid)); err == nil && u.Username != "" {
		return u.Username, true
	}
	return fmt.Sprintf("uid:%d", uid), true
}

// Device returns the kernel interface name (e.g. "tun0"), for the
// operator's `ip` commands.
func (p *RealPhone) Device() string { return p.dev.Name() }

// MTU returns the interface MTU the engine honors.
func (p *RealPhone) MTU() int { return p.dev.MTU() }

// InstallApp labels a host UID, overriding the account-name fallback —
// handy for pinning test traffic to a recognizable name.
func (p *RealPhone) InstallApp(uid int, name string) { p.pm.Install(uid, name) }

// Measurements returns every opportunistic measurement collected so
// far.
func (p *RealPhone) Measurements() []Measurement { return p.store.Snapshot() }

// TCPMeasurements returns the per-app TCP connect RTTs.
func (p *RealPhone) TCPMeasurements() []Measurement { return p.store.Kind(measure.KindTCP) }

// DNSMeasurements returns the DNS transaction RTTs.
func (p *RealPhone) DNSMeasurements() []Measurement { return p.store.Kind(measure.KindDNS) }

// ExportCSV writes a snapshot of the measurements as CSV.
func (p *RealPhone) ExportCSV(w io.Writer) error {
	return measure.WriteCSV(w, p.store.Snapshot())
}

// ExportJSONL writes a snapshot of the measurements as JSON Lines.
func (p *RealPhone) ExportJSONL(w io.Writer) error {
	return measure.WriteJSONL(w, p.store.Snapshot())
}

// AppMedians returns each app's median RTT in milliseconds over apps
// with at least minN measurements.
func (p *RealPhone) AppMedians(minN int) map[string]float64 {
	return measure.AppMedians(p.TCPMeasurements(), minN)
}

// EngineStats exposes the engine's internal counters.
func (p *RealPhone) EngineStats() engine.Stats { return p.eng.Stats() }

// Subscribe streams measurements as they are recorded, with the same
// contract as Phone.Subscribe: registered before returning, bounded
// ring, drops counted in StreamDrops, stream ends on ctx cancellation
// or Close.
func (p *RealPhone) Subscribe(ctx context.Context, f Filter) iter.Seq[Measurement] {
	sub := p.store.Subscribe(0, f.predicate())
	if ctx != nil {
		context.AfterFunc(ctx, sub.Close)
	}
	return sub.Seq(ctx)
}

// StreamDrops reports the total measurements dropped across all
// subscribers because a ring was full. Zero in any healthy deployment.
func (p *RealPhone) StreamDrops() uint64 { return p.store.DroppedRecords() }

// TunStats exposes the device's packet counters.
func (p *RealPhone) TunStats() tun.Stats { return p.dev.Stats() }

// Close stops the engine, ends every live Subscribe stream (delivering
// the records already ringed), and closes the TUN device. Idempotent.
func (p *RealPhone) Close() {
	p.closeOnce.Do(func() {
		p.eng.Stop()
		p.store.CloseSubscribers()
		p.dev.Close()
	})
}
