package mopeye

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// Arm the registry before the workload, drive traffic, close, and check
// the exposition: engine counters reflect the flood and the RTT summary
// counts agree exactly with the measurement tables (the quantile feed
// joins sinkWG, so Close guarantees the drain is complete).
func TestPhoneMetricsExposition(t *testing.T) {
	p := newPhone(t)
	if err := p.WriteMetrics(io.Discard); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		conn, err := p.Connect(10001, "api.example.com:443")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for len(p.TCPMeasurements()) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tcp, dns := len(p.TCPMeasurements()), len(p.DNSMeasurements())
	p.Close()

	var buf bytes.Buffer
	if err := p.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mopeye_engine_syns_total counter",
		"# TYPE mopeye_phone_rtt_ms summary",
		fmt.Sprintf("mopeye_engine_syns_total %d\n", tcp),
		fmt.Sprintf(`mopeye_phone_rtt_ms_count{kind="tcp"} %d`+"\n", tcp),
		fmt.Sprintf(`mopeye_phone_rtt_ms_count{kind="dns"} %d`+"\n", dns),
		"mopeye_stream_dropped_total 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// The snapshot API agrees with the rendered text.
	if v, ok := p.Metrics().Get("mopeye_engine_tcp_measurements_total"); !ok || int(v) != tcp {
		t.Errorf("snapshot tcp measurements = %v, %v; want %d", v, ok, tcp)
	}
}

func TestPhoneMetricsHandler(t *testing.T) {
	p := newPhone(t)
	ts := httptest.NewServer(p.MetricsHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != metrics.ContentType {
		t.Errorf("content type %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "mopeye_engine_") {
		t.Errorf("scrape missing engine families:\n%s", body)
	}
}

// Arming the registry on an already-closed phone must not hang or
// subscribe: the instruments register, the quantile feed is skipped.
func TestPhoneMetricsAfterClose(t *testing.T) {
	p := newPhone(t)
	p.Close()
	var buf bytes.Buffer
	if err := p.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mopeye_engine_syns_total") {
		t.Errorf("closed phone scrape missing engine counters:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `mopeye_phone_rtt_ms_count{kind="tcp"} 0`) {
		t.Errorf("closed phone should expose empty summaries:\n%s", buf.String())
	}
}

// Fleet metrics: aggregate families plus one labeled sample per phone.
func TestFleetMetrics(t *testing.T) {
	fleet, err := NewFleet(FleetOptions{
		Phones:    fleetRoster(t, 3),
		Collector: CollectorOptions{BatchSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := fleet.Metrics()
	if v, ok := snap.Get("mopeye_fleet_phones"); !ok || v != 3 {
		t.Fatalf("fleet phones gauge = %v, %v", v, ok)
	}
	if v, ok := snap.Get("mopeye_fleet_records_total"); !ok || int(v) != fleet.Stats().Records {
		t.Errorf("fleet records counter = %v, %v; want %d", v, ok, fleet.Stats().Records)
	}
	for i := 1; i <= 3; i++ {
		dev := fmt.Sprintf("phone-%02d", i)
		v, ok := snap.Get("mopeye_fleet_phone_up",
			metrics.L("device", dev), metrics.L("phone", fmt.Sprint(i-1)))
		if !ok || v != 1 {
			t.Errorf("phone_up{device=%q} = %v, %v", dev, v, ok)
		}
	}
	var buf bytes.Buffer
	if err := fleet.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `mopeye_fleet_phone_records{device="phone-01",phone="0"}`) {
		t.Errorf("fleet exposition missing per-phone samples:\n%s", buf.String())
	}
}
