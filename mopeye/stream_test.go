package mopeye

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/measure"
)

// streamPhone builds a phone and a started subscription collector:
// Subscribe registers before the drain goroutine starts, so
// everything recorded after this returns is observed.
func streamPhone(t *testing.T, f Filter) (*Phone, func() []Measurement) {
	t.Helper()
	p := newPhone(t)
	stream := p.Subscribe(context.Background(), f)
	var (
		mu  sync.Mutex
		got []Measurement
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range stream {
			mu.Lock()
			got = append(got, m)
			mu.Unlock()
		}
	}()
	return p, func() []Measurement {
		<-done // stream ends when the phone closes
		mu.Lock()
		defer mu.Unlock()
		return got
	}
}

func runWorkload(t *testing.T, p *Phone, conns int) {
	t.Helper()
	for i := 0; i < conns; i++ {
		conn, err := p.Connect(10001, "api.example.com:443")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	// conns TCP records plus one DNS record for the first resolution.
	for len(p.Measurements()) < conns+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// Draining a subscription across the phone's lifetime must observe
// exactly what Measurements() snapshots, in the same order — the
// pull and push views are the same pipeline.
func TestSubscribeMatchesSnapshot(t *testing.T) {
	p, drained := streamPhone(t, Filter{})
	runWorkload(t, p, 3)
	snap := p.Measurements()
	p.Close()
	got := drained()
	if len(got) != len(snap) {
		t.Fatalf("streamed %d, snapshot %d", len(got), len(snap))
	}
	for i := range snap {
		if got[i] != snap[i] {
			t.Errorf("record %d:\n stream  %+v\n snapshot %+v", i, got[i], snap[i])
		}
	}
	if d := p.StreamDrops(); d != 0 {
		t.Errorf("stream drops: %d", d)
	}
}

func TestSubscribeKindAndAppFilters(t *testing.T) {
	p, drained := streamPhone(t, Filter{Kind: DNSOnly})
	runWorkload(t, p, 2)
	p.Close()
	for _, m := range drained() {
		if m.Kind != measure.KindDNS {
			t.Errorf("DNSOnly leaked %v", m.Kind)
		}
	}

	p2, drained2 := streamPhone(t, Filter{Kind: TCPOnly, App: "com.example.app", UID: 10001})
	runWorkload(t, p2, 2)
	p2.Close()
	got := drained2()
	if len(got) != 2 {
		t.Fatalf("filtered stream: %d records, want 2", len(got))
	}
	for _, m := range got {
		if m.App != "com.example.app" || m.UID != 10001 || m.Kind != measure.KindTCP {
			t.Errorf("filter leaked %+v", m)
		}
	}
}

// Cancelling the context ends the range without closing the phone.
func TestSubscribeContextCancel(t *testing.T) {
	p := newPhone(t)
	ctx, cancel := context.WithCancel(context.Background())
	stream := p.Subscribe(ctx, Filter{})
	done := make(chan int)
	go func() {
		n := 0
		for range stream {
			n++
		}
		done <- n
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("subscription survived context cancellation")
	}
	// The phone is still alive and measuring.
	conn, err := p.Connect(10001, "api.example.com:443")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

// A subscription whose context is cancelled before (or without) the
// iterator ever being ranged must still detach — an abandoned Seq may
// not keep filling its ring and inflating the drop counters.
func TestSubscribeCancelWithoutRangeDetaches(t *testing.T) {
	p := newPhone(t)
	ctx, cancel := context.WithCancel(context.Background())
	stream := p.Subscribe(ctx, Filter{})
	if n := p.bed.Store.Subscribers(); n != 1 {
		t.Fatalf("subscribers after Subscribe: %d", n)
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for p.bed.Store.Subscribers() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := p.bed.Store.Subscribers(); n != 0 {
		t.Fatalf("abandoned subscription still attached: %d", n)
	}
	// Ranging the dead iterator is an empty loop, not a hang.
	for range stream {
		t.Error("cancelled subscription yielded a record")
	}
}

// Attached CSV and JSONL sinks must capture the complete stream,
// parse back, and match the snapshot export byte for byte.
func TestAttachSinksCaptureEverything(t *testing.T) {
	p := newPhone(t)
	var csvBuf, jsonlBuf bytes.Buffer
	if _, err := p.Attach(NewCSVSink(&csvBuf)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Attach(NewJSONLSink(&jsonlBuf)); err != nil {
		t.Fatal(err)
	}
	runWorkload(t, p, 3)
	snap := p.Measurements()
	var want bytes.Buffer
	if err := p.ExportCSV(&want); err != nil {
		t.Fatal(err)
	}
	p.Close()

	if csvBuf.String() != want.String() {
		t.Error("CSVSink output diverges from ExportCSV of the same records")
	}
	got, err := measure.ReadJSONL(&jsonlBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snap) {
		t.Fatalf("JSONL sink captured %d of %d", len(got), len(snap))
	}
	for i := range snap {
		// The wire format keeps wall-clock nanoseconds only: drop the
		// live record's monotonic reading before comparing.
		want := snap[i]
		want.At = time.Unix(0, want.At.UnixNano()).UTC()
		if got[i] != want {
			t.Errorf("jsonl record %d:\n sink %+v\n want %+v", i, got[i], want)
		}
	}
}

func TestAttachAfterCloseErrors(t *testing.T) {
	p := newPhone(t)
	p.Close()
	if _, err := p.Attach(NewCSVSink(&bytes.Buffer{})); err == nil {
		t.Error("Attach on a closed phone succeeded")
	}
	// Subscribe on a closed phone is an empty stream, not a hang.
	for range p.Subscribe(context.Background(), Filter{}) {
		t.Error("subscription on a closed phone yielded a record")
	}
}

// Run ties the phone's lifetime to a context.
func TestRunClosesOnCancel(t *testing.T) {
	p := newPhone(t)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.Run(ctx) }()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	// The phone is closed: new streams end immediately.
	for range p.Subscribe(context.Background(), Filter{}) {
		t.Error("closed phone streamed a record")
	}

	// Run on an already-closed phone returns immediately with nil.
	if err := p.Run(context.Background()); err != nil {
		t.Errorf("Run after close: %v", err)
	}
}

// The close-once satellite: concurrent Subscribe, Attach, workload and
// multiple Close calls must be race-free (run under -race) and every
// Close must block until teardown completed.
func TestConcurrentSubscribeAttachClose(t *testing.T) {
	p, err := New(Options{
		Servers: []Server{{Domain: "race.example", Addr: "203.0.113.77:80", RTTMillis: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.InstallApp(1, "race.app")

	var wg sync.WaitGroup
	// Streaming subscribers.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range p.Subscribe(context.Background(), Filter{}) {
			}
		}()
	}
	// Attachers racing with close.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Attach(NewCSVSink(&bytes.Buffer{})); err != nil {
				return // closed first: acceptable
			}
		}()
	}
	// Workload.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			conn, err := p.Connect(1, "203.0.113.77:80")
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	// Concurrent closers.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(5 * time.Millisecond)
			p.Close()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent subscribe/attach/close deadlocked")
	}
	p.Close() // idempotent
}

// The acceptance e2e: a live phone's stream feeds a Collector whose
// uploads flow into the §4.2 Study pipeline — measure once, analyze
// with the deployment-scale code.
func TestCollectorStreamsIntoStudy(t *testing.T) {
	p := newPhone(t)
	col := NewCollector(CollectorOptions{BatchSize: 4, Device: "device-e2e"})
	if _, err := p.Attach(col); err != nil {
		t.Fatal(err)
	}
	runWorkload(t, p, 6)
	snap := p.Measurements()
	p.Close()

	// Batch policy: 7 records at batch size 4 is at least one
	// size-triggered upload plus the final flush.
	if col.Uploads() < 2 {
		t.Errorf("uploads: %d, want >= 2", col.Uploads())
	}
	if col.Pending() != 0 {
		t.Errorf("pending after close: %d", col.Pending())
	}
	recs := col.Records()
	if len(recs) != len(snap) {
		t.Fatalf("collector holds %d of %d", len(recs), len(snap))
	}
	for _, r := range recs {
		if r.Device != "device-e2e" {
			t.Fatalf("record missing device stamp: %+v", r)
		}
	}
	// Server-side aggregate agrees with the phone's own medians.
	want := p.AppMedians(1)
	got := col.AppMedians()
	if len(got) != len(want) {
		t.Fatalf("medians: %v want %v", got, want)
	}
	for app, ms := range want {
		if got[app] != ms {
			t.Errorf("median[%s]: %v want %v", app, got[app], ms)
		}
	}

	// Into the §4.2 pipeline.
	st := col.Study()
	sum := st.Summary()
	if !strings.Contains(sum, "from 1 devices") {
		t.Errorf("study summary: %s", sum)
	}
	ds := st.Dataset()
	if len(ds.Records) != len(recs) {
		t.Errorf("study ingested %d of %d", len(ds.Records), len(recs))
	}
	if d := ds.DeviceByID("device-e2e"); d == nil {
		t.Error("contributing phone missing from study devices")
	}
	if st.ReportContributions() == "" {
		t.Error("empty contributions report")
	}
}
