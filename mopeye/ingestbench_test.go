package mopeye

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/crowd"
	"repro/internal/measure"
)

// The ingest smoke: a small fleet through the real wire into a sharded
// retain-off collector, with client-side exact verification of the
// sketched medians. This is the CI gate for the load harness.
func TestIngestBenchSmoke(t *testing.T) {
	o := IngestBenchOptions{
		Devices:          1000,
		BatchesPerDevice: 2,
		RecordsPerBatch:  4,
		DuplicateEvery:   10,
		Workers:          4,
		ServerShards:     4,
		Seed:             7,
		VerifyExact:      true,
		MetricsAddr:      "127.0.0.1:0",
	}
	res, err := RunIngestBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 2000 || res.Records != 8000 {
		t.Errorf("volume: %+v", res)
	}
	if res.Server.Batches != 2000 || res.Server.Records != 8000 {
		t.Errorf("server view: %+v", res.Server)
	}
	if res.Server.Duplicates == 0 {
		t.Error("redeliveries never exercised dedup")
	}
	// One key per unique batch — redeliveries share keys.
	if res.DedupKeys != 2000 {
		t.Errorf("dedup keys: %d", res.DedupKeys)
	}
	if res.RecordsPerSec <= 0 || res.Duration <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
	if res.UploadP99MS < res.UploadP50MS || res.UploadP50MS <= 0 {
		t.Errorf("latency quantiles inverted: p50=%g p99=%g", res.UploadP50MS, res.UploadP99MS)
	}
	if !res.Verified {
		t.Fatal("exact verification did not run")
	}
	// RunIngestBench fails hard above 10*alpha; this asserts the
	// recorded number is sane too.
	if res.MedianMaxRelErr > 0.1 {
		t.Errorf("sketched medians off by %.4f", res.MedianMaxRelErr)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

// BlockOnFull converts queue overflow from drops into backpressure:
// a slow collector with a 1-slot queue still receives every batch.
func TestHTTPTransportBlockOnFull(t *testing.T) {
	srv, err := crowd.NewServer(crowd.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var served atomic.Int64
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Millisecond)
		served.Add(1)
		srv.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(slow)
	defer ts.Close()
	tr := NewHTTPTransport(ts.URL, HTTPTransportOptions{QueueSize: 1, BlockOnFull: true})
	for i := 0; i < 8; i++ {
		b := Batch{Device: "p1", Key: string(rune('a' + i)), Seq: i, Records: uploadRecs(1, "com.app")}
		if err := tr.Upload(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Dropped != 0 || st.Uploaded != 8 {
		t.Errorf("blocking transport stats: %+v", st)
	}
	if ss := srv.Stats(); ss.Batches != 8 {
		t.Errorf("server got %d batches", ss.Batches)
	}
	// A cancelled context unblocks a waiting Upload.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tr.Upload(ctx, Batch{}); err == nil {
		t.Error("upload on cancelled context accepted")
	}
}

// OnAttempt observes every delivery attempt — failures with their
// errors, then the success — in order.
func TestHTTPTransportOnAttempt(t *testing.T) {
	var durs []time.Duration
	var errs []error
	srv, _, tr := flakyCollectord(t, []string{"503", "503"}, HTTPTransportOptions{
		OnAttempt: func(d time.Duration, err error) {
			durs = append(durs, d)
			errs = append(errs, err)
		},
	})
	b := Batch{Device: "p1", Key: "p1/k/1", Seq: 1, Records: uploadRecs(2, "com.app")}
	if err := tr.Upload(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(errs) != 3 || errs[0] == nil || errs[1] == nil || errs[2] != nil {
		t.Fatalf("attempt errors: %v", errs)
	}
	for i, d := range durs {
		if d <= 0 {
			t.Errorf("attempt %d duration: %v", i, d)
		}
	}
	if ss := srv.Stats(); ss.Batches != 1 {
		t.Errorf("server stats: %+v", ss)
	}
}

// The stats client reads the sketched aggregates over the wire.
func TestFetchCollectorStats(t *testing.T) {
	srv, err := crowd.NewServer(crowd.ServerOptions{Token: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	tr := NewHTTPTransport(ts.URL, HTTPTransportOptions{Token: "tok"})
	b := Batch{Device: "p1", Key: "p1/k/1", Seq: 1, Records: uploadRecs(5, "com.app")}
	if err := tr.Upload(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := FetchCollectorStats(ts.Client(), ts.URL, "tok")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stats.Records != 5 || sum.TCPRecords != 5 {
		t.Errorf("summary: %+v", sum)
	}
	qs, ok := sum.PerApp["com.app"]
	if !ok || qs.N != 5 {
		t.Errorf("per-app summary: %+v", sum.PerApp)
	}
	if _, err := FetchCollectorStats(ts.Client(), ts.URL, "wrong"); err == nil {
		t.Error("bad token accepted")
	}
}

// The acceptance e2e of PR 5/6, now against the sharded collector: the
// byte-identical exactly-once dataset property survives sharded
// ingest under 503s, stalls, and duplicate deliveries.
func TestFleetE2EShardedServerMatchesInProcess(t *testing.T) {
	srv, err := crowd.NewShardedServer(crowd.ServerOptions{Token: "fleet-secret"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyHandler{inner: srv, script: []string{
		"503", "dup", "hang", "503", "dup", "503",
	}}
	ts := httptest.NewServer(flaky)
	defer ts.Close()
	transport := NewHTTPTransport(ts.URL, HTTPTransportOptions{
		Client:      &http.Client{Timeout: 50 * time.Millisecond},
		Token:       "fleet-secret",
		QueueSize:   64,
		MaxAttempts: 12,
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
	})

	fleet, err := NewFleet(FleetOptions{
		Phones:    fleetRoster(t, 8),
		Transport: transport,
		Collector: CollectorOptions{BatchSize: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Run(context.Background()); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if err := transport.Close(); err != nil {
		t.Fatalf("transport close: %v", err)
	}
	if tstats := transport.Stats(); tstats.Dropped != 0 || tstats.Failed != 0 {
		t.Fatalf("transport lost batches: %+v", tstats)
	}
	if ss := srv.Stats(); ss.Duplicates == 0 {
		t.Error("fault injection never exercised sharded dedup")
	}

	// Byte-identical under canonical order, across shard boundaries.
	local := fleet.Records()
	remote := srv.Records()
	if len(remote) != len(local) {
		t.Fatalf("sharded server holds %d records, fleet uploaded %d", len(remote), len(local))
	}
	if !bytes.Equal(jsonlBytes(t, local), jsonlBytes(t, remote)) {
		t.Fatal("sharded server dataset diverges from the fleet's records")
	}

	// The sketched medians agree with the exact nearest-rank medians
	// over the very same fleet dataset, per app, within alpha. (The
	// sketch answers nearest-rank quantiles; interpolated medians —
	// measure.AppMedians — can sit between two samples on tiny
	// even-count sets, so they are not the comparable baseline.)
	sum := srv.Summary()
	for app, rs := range measure.ByApp(remote) {
		ms := measure.RTTMillis(rs)
		sort.Float64s(ms)
		want := ms[(len(ms)-1)/2]
		qs, ok := sum.PerApp[app]
		if !ok {
			t.Fatalf("app %s missing from sharded summary", app)
		}
		if relDiff(qs.P50MS, want) > 2*sum.RelativeAccuracy {
			t.Errorf("app %s: sketched median %g vs exact %g", app, qs.P50MS, want)
		}
	}
	// And the wire-read summary is the same document.
	wireSum, err := FetchCollectorStats(ts.Client(), ts.URL, "fleet-secret")
	if err != nil {
		t.Fatal(err)
	}
	if wireSum.Stats != sum.Stats || len(wireSum.PerApp) != len(sum.PerApp) {
		t.Errorf("wire summary diverges: %+v vs %+v", wireSum.Stats, sum.Stats)
	}
}
