package mopeye

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/crowd"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/testbed"
)

// This file is the scenario matrix: adverse network-condition profiles
// crossed with trace-driven workloads, each cell a mini-fleet whose
// measurements are checked for truthfulness against the injected
// physics. It answers the question the paper's deployment could only
// assume away: when the network misbehaves — loss, bufferbloat,
// handover, dead resolvers — does MopEye's opportunistic pipeline
// still report what the network actually did?
//
// Per cell, a handful of clean-baseline phones and one planted phone
// on the adverse profile run the same workload into one fleet. The
// cell then asserts:
//
//   - the planted phone's measured TCP RTT median lands inside the
//     profile's truthfulness envelope (injected RTT + jitter + slack);
//   - same for the DNS median when the profile bounds it;
//   - datagram accounting is exact: every datagram the phone stack
//     sent is in exactly one engine counter (DNSMeasurements +
//     DNSTimeouts + UDPRelayed + UDPNoResponse + UDPDropped) — drops
//     are counted, never silent;
//   - every TCP measurement stays attributed to the installed app;
//   - the §4.2 crowd analysis over the cell's merged records ranks the
//     planted ISP slowest (where the profile separates from clean).

// ScenarioMatrixOptions configures RunScenarioMatrix.
type ScenarioMatrixOptions struct {
	// Profiles are condition-profile names (ScenarioProfileNames);
	// empty means all.
	Profiles []string
	// Workloads are workload-generator names (WorkloadNames); empty
	// means all.
	Workloads []string
	// PhonesPerCell is the mini-fleet size per cell: PhonesPerCell-1
	// clean phones plus one planted on the adverse profile. Default 3,
	// minimum 2.
	PhonesPerCell int
	// CellDuration bounds each phone's workload. Default 1500ms.
	CellDuration time.Duration
	// Workers is the per-phone engine worker count; 0 keeps the engine
	// default.
	Workers int
	// Seed drives all randomness. Default 1.
	Seed int64
}

func (o ScenarioMatrixOptions) withDefaults() (ScenarioMatrixOptions, error) {
	if len(o.Profiles) == 0 {
		o.Profiles = ScenarioProfileNames()
	}
	if len(o.Workloads) == 0 {
		o.Workloads = WorkloadNames()
	}
	for _, p := range o.Profiles {
		if _, ok := scenarioProfiles[p]; !ok {
			return o, fmt.Errorf("mopeye: unknown profile %q (have %v)", p, ScenarioProfileNames())
		}
	}
	for _, w := range o.Workloads {
		if _, ok := workloadRegistry[w]; !ok {
			return o, fmt.Errorf("mopeye: unknown workload %q (have %v)", w, WorkloadNames())
		}
	}
	if o.PhonesPerCell == 0 {
		o.PhonesPerCell = 3
	}
	if o.PhonesPerCell < 2 {
		return o, fmt.Errorf("mopeye: PhonesPerCell %d, need >= 2 (clean baseline + planted)", o.PhonesPerCell)
	}
	if o.CellDuration <= 0 {
		o.CellDuration = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// ScenarioCell is one profile x workload cell's outcome.
type ScenarioCell struct {
	Profile  string
	Workload string
	Phones   int
	Records  int

	// Planted-phone truth: measured medians against the profile's
	// envelope (milliseconds). DNS fields are zero when the profile
	// carries no DNS envelope.
	TCPMedianMS        float64
	TCPSamples         int
	TCPLoMS, TCPHiMS   float64
	DNSMedianMS        float64
	DNSSamples         int
	DNSLoMS, DNSHiMS   float64

	// Datagram accounting on the planted phone: Sent is the phone
	// stack's ground truth, Accounted the sum of the engine's terminal
	// counters. Truthful means equal.
	DatagramsSent      int64
	DatagramsAccounted int64
	DNSTimeouts        int
	UDPDropped         int

	// PlantedISP is the crowd-metadata stamp of the adverse phone;
	// RankedSlowest reports whether the §4.2 per-ISP ranking put it
	// last (only meaningful when Ranked).
	PlantedISP    string
	Ranked        bool
	RankedSlowest bool

	// Failures are this cell's truthfulness violations; empty means the
	// cell passed.
	Failures []string
}

// ScenarioResult is a completed matrix run.
type ScenarioResult struct {
	Cells []ScenarioCell
}

// Failures flattens every cell's truthfulness violations, prefixed
// with the cell coordinates. Empty means the whole matrix passed.
func (r *ScenarioResult) Failures() []string {
	var out []string
	for _, c := range r.Cells {
		for _, f := range c.Failures {
			out = append(out, fmt.Sprintf("[%s x %s] %s", c.Profile, c.Workload, f))
		}
	}
	return out
}

// String renders the matrix as the table `paperbench -exp scenarios`
// prints.
func (r *ScenarioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-6s %7s %9s %17s %17s %11s %6s %s\n",
		"profile", "wl", "records", "tcp med", "tcp envelope", "dns med/env", "sent=acct", "rank", "ok")
	for _, c := range r.Cells {
		env := fmt.Sprintf("[%.0f,%.0f]", c.TCPLoMS, c.TCPHiMS)
		dns := "-"
		if c.DNSHiMS > 0 {
			dns = fmt.Sprintf("%.1f [%.0f,%.0f]", c.DNSMedianMS, c.DNSLoMS, c.DNSHiMS)
		}
		acct := fmt.Sprintf("%d=%d", c.DatagramsSent, c.DatagramsAccounted)
		rank := "-"
		if c.Ranked {
			rank = "no"
			if c.RankedSlowest {
				rank = "yes"
			}
		}
		ok := "PASS"
		if len(c.Failures) > 0 {
			ok = "FAIL: " + strings.Join(c.Failures, "; ")
		}
		fmt.Fprintf(&b, "%-15s %-6s %7d %7.1fms %17s %17s %11s %6s %s\n",
			c.Profile, c.Workload, c.Records, c.TCPMedianMS, env, dns, acct, rank, ok)
	}
	return b.String()
}

// scenarioSpec couples a condition profile with the crowd-metadata
// stamp its planted phone reports and how its cell is ranked.
type scenarioSpec struct {
	prof    func() netsim.ConditionProfile
	netType string
	isp     string
	// rankKind is the §4.2 metric the cell ranks ISPs by.
	rankKind measure.Kind
	// rankable is false when the profile does not separate from the
	// clean baseline on any median (clean itself, or a regime whose
	// only signature is timeouts).
	rankable bool
	// minTCP overrides the minimum TCP sample count the envelope check
	// demands (0 means the default). The blackhole regime spends most
	// of its run burning resolver timeouts, so it proves TCP survives
	// with fewer samples.
	minTCP int
}

var scenarioProfiles = map[string]scenarioSpec{
	"clean-wifi":     {prof: netsim.ProfileWiFi, netType: "WiFi", isp: "clean-net", rankKind: measure.KindTCP, rankable: false},
	"lossy-cellular": {prof: netsim.ProfileLossyCellular, netType: "LTE", isp: "slow-cell", rankKind: measure.KindTCP, rankable: true},
	"bufferbloat":    {prof: netsim.ProfileBufferbloat, netType: "WiFi", isp: "bloat-net", rankKind: measure.KindTCP, rankable: true},
	"asym-uplink":    {prof: netsim.ProfileAsymmetricUplink, netType: "WiFi", isp: "adsl-net", rankKind: measure.KindTCP, rankable: true},
	"handover":       {prof: netsim.ProfileHandover, netType: "LTE", isp: "edge-cell", rankKind: measure.KindTCP, rankable: true},
	"dns-flaky":      {prof: netsim.ProfileDNSFlaky, netType: "LTE", isp: "flaky-dns", rankKind: measure.KindDNS, rankable: true},
	// The blackhole's signature is timeouts and exact drop accounting,
	// not a shifted median: its TCP path is nearly clean, and it
	// produces no DNS measurements to rank.
	"dns-blackhole": {prof: netsim.ProfileDNSBlackhole, netType: "LTE", isp: "dead-dns", rankKind: measure.KindTCP, rankable: false, minTCP: 1},
}

// defaultMinTCPSamples is the sample floor for the TCP envelope check:
// short cells with long-lived-connection workloads yield only a
// handful of connects, and the profiles' envelopes are wide enough
// that a small-sample median is still a meaningful truthfulness check.
const defaultMinTCPSamples = 2

// ScenarioProfileNames lists the condition profiles the matrix knows,
// sorted.
func ScenarioProfileNames() []string {
	names := make([]string, 0, len(scenarioProfiles))
	for n := range scenarioProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// The cell topology: three echo servers, two behind domains (so DNS is
// on the path) and one visited by literal address (so TCP traffic
// survives a dead resolver).
var (
	cellServerAddrs = []string{"203.0.113.10:443", "203.0.113.11:443", "203.0.113.12:443"}
	cellSites       = []string{"web.cell.test:443", "api.cell.test:443", "203.0.113.12:443"}
)

func cellServers() []Server {
	return []Server{
		{Domain: "web.cell.test", Addr: cellServerAddrs[0], RTTMillis: 10},
		{Domain: "api.cell.test", Addr: cellServerAddrs[1], RTTMillis: 10},
		{Domain: "raw.cell.test", Addr: cellServerAddrs[2], RTTMillis: 10},
	}
}

func cellServerIPs() []netip.Addr {
	ips := make([]netip.Addr, len(cellServerAddrs))
	for i, a := range cellServerAddrs {
		ips[i] = netip.MustParseAddrPort(a).Addr()
	}
	return ips
}

const (
	cellUID = 10001
	cellApp = "com.example.scenario"
	// cleanISP stamps the baseline phones' records.
	cleanISP     = "clean-net"
	cleanNetType = "WiFi"
)

// phoneCapture is the truth read off one phone after its workload,
// while the engine is still attached and before Fleet closes it.
type phoneCapture struct {
	planted bool
	settled bool
	sent    int64
	stats   engine.Stats
	tcp     []Measurement
	dns     []Measurement
}

// RunScenarioMatrix runs profiles x workloads and checks each cell's
// measurements for truthfulness against the injected conditions. The
// returned result always covers every cell; per-cell violations are in
// ScenarioCell.Failures (and aggregated by Failures()), not an error —
// the error covers only setup-level problems.
func RunScenarioMatrix(ctx context.Context, o ScenarioMatrixOptions) (*ScenarioResult, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{}
	cellIdx := 0
	for _, pname := range o.Profiles {
		for _, wname := range o.Workloads {
			cell, err := runScenarioCell(ctx, o, pname, wname, cellIdx)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, cell)
			cellIdx++
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
		}
	}
	return res, nil
}

func runScenarioCell(ctx context.Context, o ScenarioMatrixOptions, pname, wname string, cellIdx int) (ScenarioCell, error) {
	spec := scenarioProfiles[pname]
	adverse := spec.prof()
	clean := netsim.ProfileWiFi()

	cell := ScenarioCell{
		Profile:    pname,
		Workload:   wname,
		Phones:     o.PhonesPerCell,
		PlantedISP: spec.isp,
		TCPLoMS:    durMS(adverse.RTTLo),
		TCPHiMS:    durMS(adverse.RTTHi),
		DNSLoMS:    durMS(adverse.DNSLo),
		DNSHiMS:    durMS(adverse.DNSHi),
	}
	fail := func(format string, args ...any) {
		cell.Failures = append(cell.Failures, fmt.Sprintf(format, args...))
	}

	// Short relay timeouts keep blackhole cells fast: the engine-side
	// DNS wait and the UDP response window bound how long accounting
	// takes to settle after the workload stops.
	cfg := engine.Default()
	cfg.DNSTimeout = 800 * time.Millisecond
	cfg.UDPTimeout = 250 * time.Millisecond

	captures := make([]*phoneCapture, o.PhonesPerCell)
	var capMu sync.Mutex
	phones := make([]FleetPhone, o.PhonesPerCell)
	for i := range phones {
		i := i
		planted := i == o.PhonesPerCell-1
		prof := clean
		if planted {
			prof = adverse
		}
		wl, err := WorkloadByName(wname, WorkloadOptions{
			Sites:    cellSites,
			UID:      cellUID,
			Duration: o.CellDuration,
			Seed:     o.Seed + int64(cellIdx)*100 + int64(i),
		})
		if err != nil {
			return cell, err
		}
		phones[i] = FleetPhone{
			Device:  fmt.Sprintf("cell%d-%s-%s-%d", cellIdx, pname, wname, i),
			Options: Options{Servers: cellServers(), Engine: &cfg, Workers: o.Workers, Seed: o.Seed + int64(cellIdx)*100 + int64(i)},
			Apps:    map[int]string{cellUID: cellApp},
			Workload: func(ctx context.Context, p *Phone) error {
				stop := netsim.ApplyProfile(p.bed.Net, prof, cellServerIPs(), testbed.DNSAddr.Addr())
				defer stop()
				werr := wl(ctx, p)
				pc := capturePhone(p, planted)
				capMu.Lock()
				captures[i] = pc
				capMu.Unlock()
				return werr
			},
		}
	}

	fleet, err := NewFleet(FleetOptions{Phones: phones})
	if err != nil {
		return cell, err
	}
	if err := fleet.Run(ctx); err != nil {
		fail("fleet: %v", err)
	}

	// Planted-phone truthfulness.
	planted := captures[o.PhonesPerCell-1]
	if planted == nil {
		fail("planted phone produced no capture")
		return cell, nil
	}
	st := planted.stats
	cell.TCPSamples = len(planted.tcp)
	cell.DNSSamples = len(planted.dns)
	cell.TCPMedianMS = measure.MedianRTT(planted.tcp)
	cell.DNSMedianMS = measure.MedianRTT(planted.dns)
	cell.DatagramsSent = planted.sent
	cell.DatagramsAccounted = accounted(st)
	cell.DNSTimeouts = st.DNSTimeouts
	cell.UDPDropped = st.UDPDropped

	minTCP := spec.minTCP
	if minTCP == 0 {
		minTCP = defaultMinTCPSamples
	}
	if cell.TCPSamples < minTCP {
		fail("only %d TCP measurements on the planted phone, want >= %d", cell.TCPSamples, minTCP)
	} else if cell.TCPMedianMS < cell.TCPLoMS || cell.TCPMedianMS > cell.TCPHiMS {
		fail("TCP median %.1fms outside envelope [%.0f, %.0f]ms", cell.TCPMedianMS, cell.TCPLoMS, cell.TCPHiMS)
	}
	if cell.DNSHiMS > 0 {
		// One sample is enough for the envelope check — the envelope
		// already spans the full two-way jitter — and short-cycle
		// workloads on a lossy resolver legitimately land few.
		if cell.DNSSamples < 1 {
			fail("no DNS measurements on the planted phone")
		} else if cell.DNSMedianMS < cell.DNSLoMS || cell.DNSMedianMS > cell.DNSHiMS {
			fail("DNS median %.1fms outside envelope [%.0f, %.0f]ms", cell.DNSMedianMS, cell.DNSLoMS, cell.DNSHiMS)
		}
	}
	if !planted.settled {
		fail("datagram accounting never settled: sent %d, accounted %d (dnsM %d + dnsTO %d + relayed %d + noResp %d + dropped %d)",
			planted.sent, accounted(st), st.DNSMeasurements, st.DNSTimeouts, st.UDPRelayed, st.UDPNoResponse, st.UDPDropped)
	}
	if pname == "dns-blackhole" {
		if st.DNSMeasurements != 0 {
			fail("blackhole produced %d DNS measurements, want 0", st.DNSMeasurements)
		}
		if st.DNSTimeouts+st.UDPDropped == 0 {
			fail("blackhole counted no DNS timeouts or drops")
		}
	}
	for _, m := range planted.tcp {
		if m.App != cellApp {
			fail("TCP measurement attributed to %q, want %q", m.App, cellApp)
			break
		}
	}
	// Every phone must account exactly, not just the planted one.
	for i, c := range captures {
		if c == nil {
			fail("phone %d produced no capture", i)
		} else if !c.settled {
			fail("phone %d accounting never settled", i)
		}
	}

	// §4.2 crowd view: stamp each phone's records with its network
	// metadata and rank ISPs by the cell's metric.
	recs := fleet.Records()
	cell.Records = len(recs)
	stamped := stampRecords(recs, phones, spec)
	if spec.rankable {
		cell.Ranked = true
		rows := crowd.ISPMedians(crowd.Ingest(stamped), spec.rankKind)
		switch {
		case len(rows) < 2:
			fail("crowd ranking has %d ISPs, want 2", len(rows))
		case rows[0].Name != spec.isp:
			fail("crowd ranking puts %q slowest (%.1fms), want planted %q", rows[0].Name, rows[0].MedianMS, spec.isp)
		default:
			cell.RankedSlowest = true
		}
	}
	return cell, nil
}

// capturePhone reads one phone's ground truth after its workload: the
// phone-stack datagram counter, the engine counters (polled until the
// accounting identity settles — in-flight relays need their timeout to
// land in a terminal counter), and the measurement snapshots.
func capturePhone(p *Phone, planted bool) *phoneCapture {
	c := &phoneCapture{planted: planted}
	deadline := time.Now().Add(3 * time.Second)
	for {
		c.sent = p.bed.Phone.UDPDatagramsSent()
		c.stats = p.EngineStats()
		if accounted(c.stats) == c.sent {
			c.settled = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.tcp = p.TCPMeasurements()
	c.dns = p.DNSMeasurements()
	return c
}

// accounted sums the terminal per-datagram counters: every datagram
// the phone stack injected must end in exactly one of them.
func accounted(s engine.Stats) int64 {
	return int64(s.DNSMeasurements + s.DNSTimeouts + s.UDPRelayed + s.UDPNoResponse + s.UDPDropped)
}

// stampRecords fills in the crowd metadata the live engine does not
// know (a real deployment reads it off the modem): clean phones report
// the clean baseline network, the planted phone its adverse one.
func stampRecords(recs []Measurement, phones []FleetPhone, spec scenarioSpec) []Measurement {
	plantedDevice := phones[len(phones)-1].Device
	out := make([]Measurement, len(recs))
	for i, r := range recs {
		if r.Device == plantedDevice {
			r.NetType, r.ISP = spec.netType, spec.isp
		} else {
			r.NetType, r.ISP = cleanNetType, cleanISP
		}
		r.Country = "Simland"
		out[i] = r
	}
	return out
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
