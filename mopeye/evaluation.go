package mopeye

import (
	"repro/internal/experiments"
)

// This file re-exports the §4.1 evaluation experiments so downstream
// users can regenerate the paper's accuracy and overhead results
// (Tables 1–4, Figure 5) through the public API.

// Table1Options sizes the tunnel-write experiment.
type Table1Options = experiments.Table1Options

// Table1Result holds the four Table 1 histograms.
type Table1Result = experiments.Table1Result

// RunTable1 compares directWrite / queueWrite / oldPut / newPut
// (§3.5.1, Table 1).
func RunTable1(o Table1Options) (*Table1Result, error) { return experiments.RunTable1(o) }

// DefaultTable1Options mirrors the paper's browsing workload scale.
func DefaultTable1Options() Table1Options { return experiments.DefaultTable1Options() }

// Table2Options configures the accuracy experiment.
type Table2Options = experiments.Table2Options

// Table2Row is one accuracy row.
type Table2Row = experiments.Table2Row

// RunTable2 compares MopEye and MobiPerf against tcpdump ground truth
// (§4.1.1, Table 2).
func RunTable2(o Table2Options) ([]Table2Row, error) { return experiments.RunTable2(o) }

// DefaultTable2Options uses the paper's three destinations.
func DefaultTable2Options() Table2Options { return experiments.DefaultTable2Options() }

// RenderTable2 renders accuracy rows in the paper's layout.
func RenderTable2(rows []Table2Row) string { return experiments.RenderTable2(rows) }

// Table3Options configures the throughput experiment.
type Table3Options = experiments.Table3Options

// Table3Result holds the speedtest throughputs.
type Table3Result = experiments.Table3Result

// RunTable3 measures download/upload throughput without a relay,
// through MopEye, and through the Haystack-style baseline (Table 3).
func RunTable3(o Table3Options) (*Table3Result, error) { return experiments.RunTable3(o) }

// DefaultTable3Options mirrors the paper's 25 Mbps dedicated WiFi.
func DefaultTable3Options() Table3Options { return experiments.DefaultTable3Options() }

// Table4Options configures the resource experiment.
type Table4Options = experiments.Table4Options

// Table4Result holds the CPU/battery/memory usage.
type Table4Result = experiments.Table4Result

// RunTable4 meters the video-streaming resource overhead of MopEye and
// the Haystack-style baseline (Table 4).
func RunTable4(o Table4Options) (*Table4Result, error) { return experiments.RunTable4(o) }

// DefaultTable4Options uses a 5 Mbps stream.
func DefaultTable4Options() Table4Options { return experiments.DefaultTable4Options() }

// Fig5Options sizes the mapping-overhead experiment.
type Fig5Options = experiments.Fig5Options

// Fig5Result holds the mapping-overhead CDFs and mitigation stats.
type Fig5Result = experiments.Fig5Result

// RunFig5 compares eager and lazy packet-to-app mapping (§3.3,
// Figure 5).
func RunFig5(o Fig5Options) (*Fig5Result, error) { return experiments.RunFig5(o) }

// DefaultFig5Options mirrors the paper's web-browsing run.
func DefaultFig5Options() Fig5Options { return experiments.DefaultFig5Options() }

// LatencyOverheadOptions configures the §4.1.2 latency-overhead
// experiment.
type LatencyOverheadOptions = experiments.LatencyOverheadOptions

// LatencyOverheadResult holds connect/data latency with and without the
// relay.
type LatencyOverheadResult = experiments.LatencyOverheadResult

// RunLatencyOverhead measures the relay's added connection and data
// delay (§4.1.2: 3.26–4.27 ms per handshake, 1.22–2.18 ms per data
// round in the paper).
func RunLatencyOverhead(o LatencyOverheadOptions) (*LatencyOverheadResult, error) {
	return experiments.RunLatencyOverhead(o)
}

// DefaultLatencyOverheadOptions mirrors the paper's Nexus 4 setup.
func DefaultLatencyOverheadOptions() LatencyOverheadOptions {
	return experiments.DefaultLatencyOverheadOptions()
}
