package mopeye

import (
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RealCeilingOptions configures the real-TUN ceiling benchmark: a
// kernel-UDP flood routed into a live TUN device, with the engine on
// the other end reading, parsing, and dispatching every datagram. The
// UDP exit is replaced by a count-and-drop transport so the bench
// measures the device-read pipeline, not loopback re-injection.
//
// Requires `-tags realtun`, root (or CAP_NET_ADMIN), and /dev/net/tun.
type RealCeilingOptions struct {
	// TunName names the device to create (empty lets the kernel pick).
	TunName string
	// Upstream is the TCP exit spec ("", "direct" or socks5://...).
	// The UDP flood never touches it, but wiring it keeps the bench's
	// engine configured exactly like a real deployment's.
	Upstream string
	// Workers, ReadBatch, ReadBatchAuto tune the engine pipeline.
	Workers       int
	ReadBatch     int
	ReadBatchAuto bool
	// Duration bounds the flood (default 3s).
	Duration time.Duration
	// PayloadBytes is the datagram size (default 512).
	PayloadBytes int
	// Senders is the number of concurrent flood goroutines (default 2).
	Senders int
	// FloodAddr is the destination the flood targets; it must route
	// into the TUN device once Setup has run. Default 198.51.100.9:9
	// (TEST-NET-2 discard, clear of the netsim TEST-NET-1 range).
	FloodAddr netip.AddrPort
	// Setup brings the freshly opened device up and routes FloodAddr
	// into it (ip link/addr); it runs after the TUN is open and before
	// the flood starts. The bench itself never execs anything.
	Setup func(devName string) error
}

// RealCeilingResult is one real-TUN ceiling run.
type RealCeilingResult struct {
	Device     string
	Elapsed    time.Duration
	Sent       int64 // datagrams the flood wrote into the kernel
	SendErrors int64
	TunPackets int   // packets the engine read off the device
	TunBytes   int64 // bytes the engine read off the device
	Relayed    int64 // datagrams that reached the (counting) UDP exit
	Dropped    int   // datagrams the relay shed under flood
}

// ReadPerSec is the device-read throughput in packets/sec.
func (r RealCeilingResult) ReadPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TunPackets) / r.Elapsed.Seconds()
}

// RelayPerSec is the end-to-end relay-dispatch throughput.
func (r RealCeilingResult) RelayPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Relayed) / r.Elapsed.Seconds()
}

// String renders the run in paperbench's report style.
func (r RealCeilingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "real-TUN ceiling on %s over %v\n", r.Device, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  flood sent      %9d datagrams (%d send errors)\n", r.Sent, r.SendErrors)
	fmt.Fprintf(&b, "  device reads    %9d pkts  %8.1f kpkt/s  %6.1f MB/s\n",
		r.TunPackets, r.ReadPerSec()/1e3,
		float64(r.TunBytes)/r.Elapsed.Seconds()/1e6)
	fmt.Fprintf(&b, "  relay dispatch  %9d pkts  %8.1f kpkt/s  (%d shed under flood)\n",
		r.Relayed, r.RelayPerSec()/1e3, r.Dropped)
	return b.String()
}

// RunRealCeiling opens a real TUN device, routes a flood into it via
// o.Setup, and measures how fast the engine drains it. Companion to
// RunDispatchBench, which measures the same pipeline over the
// zero-delay emulated device.
func RunRealCeiling(o RealCeilingOptions) (RealCeilingResult, error) {
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.PayloadBytes <= 0 {
		o.PayloadBytes = 512
	}
	if o.Senders <= 0 {
		o.Senders = 2
	}
	if !o.FloodAddr.IsValid() {
		o.FloodAddr = netip.AddrPortFrom(netip.MustParseAddr("198.51.100.9"), 9)
	}

	var relayed atomic.Int64
	phone, err := NewReal(RealOptions{
		TunName:       o.TunName,
		Upstream:      o.Upstream,
		Workers:       o.Workers,
		ReadBatch:     o.ReadBatch,
		ReadBatchAuto: o.ReadBatchAuto,
		UDPTransport: func(local, dst netip.AddrPort, payload []byte, deliver func([]byte)) {
			relayed.Add(1)
		},
	})
	if err != nil {
		return RealCeilingResult{}, err
	}
	defer phone.Close()

	if o.Setup != nil {
		if err := o.Setup(phone.Device()); err != nil {
			return RealCeilingResult{}, fmt.Errorf("interface setup: %w", err)
		}
	}

	var sent, sendErrs atomic.Int64
	deadline := time.Now().Add(o.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.Senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("udp", o.FloodAddr.String())
			if err != nil {
				sendErrs.Add(1)
				return
			}
			defer conn.Close()
			payload := make([]byte, o.PayloadBytes)
			for time.Now().Before(deadline) {
				if _, err := conn.Write(payload); err != nil {
					sendErrs.Add(1)
					continue
				}
				sent.Add(1)
			}
		}()
	}
	wg.Wait()
	// Let the engine drain what the flood queued before sampling.
	time.Sleep(150 * time.Millisecond)
	elapsed := time.Since(start)

	ts := phone.TunStats()
	es := phone.EngineStats()
	return RealCeilingResult{
		Device:     phone.Device(),
		Elapsed:    elapsed,
		Sent:       sent.Load(),
		SendErrors: sendErrs.Load(),
		TunPackets: ts.PacketsOut,
		TunBytes:   ts.BytesOut,
		Relayed:    relayed.Load(),
		Dropped:    es.UDPDropped,
	}, nil
}
