package mopeye

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crowd"
	"repro/internal/measure"
)

// This file is the upload side of the crowdsourcing API: the paper's
// phones batch measurements locally and upload them to the collector
// server over the network. Transport abstracts that hop so the
// Collector's policy (when to upload) is independent of the wire (how
// an upload travels): FuncTransport keeps the PR 4-era in-process
// hand-off, HTTPTransport is the real wire — JSONL-over-HTTP POST with
// exponential-backoff retry, per-batch idempotency keys, and a bounded
// in-flight queue so a dead collector can never block or OOM the
// phone (overflow drops are counted, the same contract as the
// subscriber rings).

// Batch is the unit of upload: one device's records under an
// idempotency key. See measure.Batch for the wire encoding.
type Batch = measure.Batch

// Transport ships one batch toward a collector. Upload must not
// block on the network: shipped implementations either enqueue
// (HTTPTransport) or run in-process (FuncTransport). Upload may be
// called concurrently by independent collectors (a Fleet shares one
// transport across all phones); retries of a batch reuse its Key, and
// a receiver deduplicating on Key sees each batch's records exactly
// once no matter how delivery misbehaves.
type Transport interface {
	Upload(ctx context.Context, b Batch) error
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(context.Context, Batch) error

// Upload calls f.
func (f TransportFunc) Upload(ctx context.Context, b Batch) error { return f(ctx, b) }

// FuncTransport wraps a bare in-process upload function — the
// migration shim for code that consumed Collector batches as plain
// record slices before the Transport redesign. New code should accept
// a Batch (TransportFunc) or speak the wire (HTTPTransport).
func FuncTransport(fn func([]Measurement) error) Transport {
	return TransportFunc(func(_ context.Context, b Batch) error {
		return fn(b.Records)
	})
}

// ErrTransportClosed is returned by Upload after Close.
var ErrTransportClosed = errors.New("mopeye: transport closed")

// HTTPTransportOptions tunes an HTTPTransport.
type HTTPTransportOptions struct {
	// Client overrides the HTTP client; default is a client with a
	// 10-second per-attempt timeout.
	Client *http.Client
	// QueueSize bounds the in-flight batch queue. Uploads beyond it
	// are dropped and counted, never blocked on — a phone must keep
	// relaying when its collector is dead. Default 16.
	QueueSize int
	// MaxAttempts is the delivery attempts per batch (first try plus
	// retries). Default 6.
	MaxAttempts int
	// BackoffBase is the first retry delay, doubled per attempt up to
	// BackoffMax. Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Token is the collector's shared bearer token, when it requires
	// one.
	Token string
	// BlockOnFull makes Upload wait for queue space instead of dropping
	// — backpressure in place of the phone-side bounded-drop contract.
	// Load generators set it so every synthesized batch is delivered
	// and the collector's ingest rate is what gets measured; a real
	// phone must not (a dead collector would stall the relay).
	BlockOnFull bool
	// OnAttempt, when set, observes every delivery attempt: the
	// attempt's wall-clock duration and its error (nil on success).
	// Called from the uploader goroutine, sequentially per transport —
	// an implementation needs no locking unless shared across
	// transports. The load harness feeds upload-latency sketches here.
	OnAttempt func(time.Duration, error)

	// sleep is the backoff clock, overridable in tests.
	sleep func(time.Duration)
}

// HTTPTransportStats counts a transport's lifetime activity.
type HTTPTransportStats struct {
	// Uploaded batches were acknowledged by the collector.
	Uploaded uint64
	// Retried counts delivery attempts beyond each batch's first.
	Retried uint64
	// Dropped batches never entered the queue (queue full at Upload).
	Dropped uint64
	// Failed batches exhausted their attempts or hit a terminal error.
	Failed uint64
}

// HTTPTransport delivers batches to a collector server (crowd.Server /
// cmd/collectord) as HTTP POSTs of the batch wire encoding. Upload
// enqueues and returns; a single uploader goroutine drains the queue
// in order, retrying each batch with exponential backoff on 5xx and
// network errors. Retries reuse the batch's idempotency key, so the
// server's dedup converts the transport's at-least-once delivery into
// exactly-once records. Close delivers everything already queued
// (with retries), then returns the first terminal error, if any.
type HTTPTransport struct {
	url string
	o   HTTPTransportOptions

	queue chan Batch
	wg    sync.WaitGroup

	mu      sync.Mutex
	closing bool
	err     error

	uploaded atomic.Uint64
	retried  atomic.Uint64
	dropped  atomic.Uint64
	failed   atomic.Uint64
}

// NewHTTPTransport builds a transport POSTing to the collector at
// baseURL (the upload endpoint is baseURL + "/v1/upload") and starts
// its uploader.
func NewHTTPTransport(baseURL string, o HTTPTransportOptions) *HTTPTransport {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 16
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 6
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.sleep == nil {
		o.sleep = time.Sleep
	}
	t := &HTTPTransport{url: baseURL, o: o, queue: make(chan Batch, o.QueueSize)}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for b := range t.queue {
			t.send(b)
		}
	}()
	return t
}

// Upload enqueues one batch. By default it never blocks: with the
// queue full the batch is dropped and counted
// (HTTPTransportStats.Dropped) — the bounded-drop contract that keeps
// a phone healthy when its collector is not. With BlockOnFull set it
// waits for queue space instead (checking ctx while it waits).
// Returns ErrTransportClosed after Close.
func (t *HTTPTransport) Upload(ctx context.Context, b Batch) error {
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// The enqueue happens under mu: Close also takes mu before
		// closing the queue, so a send can never race the close.
		t.mu.Lock()
		if t.closing {
			t.mu.Unlock()
			return ErrTransportClosed
		}
		select {
		case t.queue <- b:
			t.mu.Unlock()
			return nil
		default:
		}
		t.mu.Unlock()
		if !t.o.BlockOnFull {
			t.dropped.Add(1)
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// send delivers one batch with retries; terminal failures are counted
// and recorded as the transport's first error.
func (t *HTTPTransport) send(b Batch) {
	var body bytes.Buffer
	if err := measure.EncodeBatch(&body, b); err != nil {
		t.fail(fmt.Errorf("mopeye: encoding batch %q: %w", b.Key, err))
		return
	}
	raw := body.Bytes()
	backoff := t.o.BackoffBase
	var lastErr error
	for attempt := 0; attempt < t.o.MaxAttempts; attempt++ {
		if attempt > 0 {
			t.retried.Add(1)
			t.o.sleep(backoff)
			backoff *= 2
			if backoff > t.o.BackoffMax {
				backoff = t.o.BackoffMax
			}
		}
		attemptStart := time.Now()
		retryable, err := t.post(b, raw)
		if t.o.OnAttempt != nil {
			t.o.OnAttempt(time.Since(attemptStart), err)
		}
		if err == nil {
			t.uploaded.Add(1)
			return
		}
		lastErr = err
		if !retryable {
			t.fail(fmt.Errorf("mopeye: batch %q: %w", b.Key, err))
			return
		}
	}
	t.fail(fmt.Errorf("mopeye: batch %q: giving up after %d attempts: %w", b.Key, t.o.MaxAttempts, lastErr))
}

// post performs one delivery attempt, reporting whether a failure is
// worth retrying (5xx, timeouts, connection errors) or terminal (4xx:
// bad auth, bad batch — the same bytes will fail again).
func (t *HTTPTransport) post(b Batch, raw []byte) (retryable bool, err error) {
	req, err := http.NewRequest(http.MethodPost, t.url+"/v1/upload", bytes.NewReader(raw))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", measure.BatchContentType)
	req.Header.Set(crowd.DeviceHeader, b.Device)
	if t.o.Token != "" {
		req.Header.Set("Authorization", "Bearer "+t.o.Token)
	}
	resp, err := t.o.Client.Do(req)
	if err != nil {
		return true, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return false, nil
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusRequestTimeout:
		return true, fmt.Errorf("collector answered %s", resp.Status)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return false, fmt.Errorf("collector rejected upload: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

func (t *HTTPTransport) fail(err error) {
	t.failed.Add(1)
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// Close stops accepting batches, delivers everything already queued
// (retries included), and returns the transport's first terminal
// error. Safe to call more than once.
func (t *HTTPTransport) Close() error {
	t.mu.Lock()
	if !t.closing {
		t.closing = true
		close(t.queue)
	}
	t.mu.Unlock()
	t.wg.Wait()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Err reports the transport's first terminal error (nil while
// deliveries are still succeeding or retrying).
func (t *HTTPTransport) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// FetchCollectorStats retrieves a collector's sketched aggregate
// document (GET /v1/stats) — the read half of the wire API, O(sketch)
// on the server however large its dataset. client nil uses a
// 10-second-timeout default; token may be empty.
func FetchCollectorStats(client *http.Client, baseURL, token string) (crowd.Summary, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/stats", nil)
	if err != nil {
		return crowd.Summary{}, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return crowd.Summary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return crowd.Summary{}, fmt.Errorf("mopeye: collector stats: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var sum crowd.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		return crowd.Summary{}, fmt.Errorf("mopeye: collector stats: %w", err)
	}
	return sum, nil
}

// Stats snapshots the transport counters.
func (t *HTTPTransport) Stats() HTTPTransportStats {
	return HTTPTransportStats{
		Uploaded: t.uploaded.Load(),
		Retried:  t.retried.Load(),
		Dropped:  t.dropped.Load(),
		Failed:   t.failed.Load(),
	}
}
