package mopeye

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/crowd"
	"repro/internal/measure"
	"repro/internal/stats"
)

// Study is a generated crowdsourcing dataset (§4.2) with the analysis
// pipeline attached. It stands in for the paper's ten-month Google Play
// deployment; see DESIGN.md for the substitution rationale.
type Study struct {
	ds *crowd.Dataset
}

// NewStudy generates a dataset at the given scale (1.0 reproduces the
// paper's ~5.25M measurements; 0.05–0.1 is plenty for stable
// analyses).
func NewStudy(scale float64, seed int64) *Study {
	return &Study{ds: crowd.Generate(crowd.Config{Scale: scale, Seed: seed})}
}

// NewStudyFrom builds a Study over already-collected measurement
// records — a Collector's uploads, or a CSV/JSONL export loaded back
// with measure.ReadCSV/ReadJSONL — instead of the statistical
// generator. Device metadata is reconstructed from the records; the
// analysis pipeline is identical.
func NewStudyFrom(records []Measurement) *Study {
	return &Study{ds: crowd.Ingest(records)}
}

// Dataset exposes the underlying dataset for custom analysis.
func (s *Study) Dataset() *crowd.Dataset { return s.ds }

// ExportCSV writes the dataset's measurement records as CSV, the
// release format for the crowdsourced data.
func (s *Study) ExportCSV(w io.Writer) error {
	return measure.WriteCSV(w, s.ds.Records)
}

// Summary is the §4.2.1 dataset statistics line.
func (s *Study) Summary() string { return s.ds.Summary() }

// ReportAll renders every §4.2 table and figure.
func (s *Study) ReportAll() string {
	var b strings.Builder
	b.WriteString(s.Summary())
	b.WriteString("\n\n")
	b.WriteString(s.ReportContributions())
	b.WriteString("\n")
	b.WriteString(s.ReportCountries())
	b.WriteString("\n")
	b.WriteString(s.ReportAppRTT())
	b.WriteString("\n")
	b.WriteString(s.ReportApps())
	b.WriteString("\n")
	b.WriteString(s.ReportDNS())
	b.WriteString("\n")
	b.WriteString(s.ReportISPs())
	b.WriteString("\n")
	b.WriteString(s.ReportCaseWhatsapp())
	b.WriteString("\n")
	b.WriteString(s.ReportCaseJio())
	return b.String()
}

// ReportContributions renders Figure 6.
func (s *Study) ReportContributions() string {
	a := crowd.Fig6aUsers(s.ds)
	bb := crowd.Fig6bApps(s.ds)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — contributions (scaled thresholds):\n")
	fmt.Fprintf(&b, "  by user:  >10K:%-5d 5K-10K:%-5d 1K-5K:%-5d 100-1K:%-5d\n",
		a.Over10K, a.K5to10, a.K1to5, a.H100to1K)
	fmt.Fprintf(&b, "  by app:   >10K:%-5d 5K-10K:%-5d 1K-5K:%-5d 100-1K:%-5d\n",
		bb.Over10K, bb.K5to10, bb.K1to5, bb.H100to1K)
	return b.String()
}

// ReportCountries renders Figure 7 and the Figure 8 summary.
func (s *Study) ReportCountries() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — top 20 user countries:\n")
	for i, c := range crowd.Fig7TopCountries(s.ds, 20) {
		fmt.Fprintf(&b, "  %2d. %-14s %d\n", i+1, c.Name, c.Devices)
	}
	locs := crowd.Fig8Locations(s.ds)
	fmt.Fprintf(&b, "Figure 8 — %d measurement locations across regions:\n", len(locs))
	regions := crowd.Fig8RegionSummary(s.ds)
	keys := make([]string, 0, len(regions))
	for k := range regions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return regions[keys[i]] > regions[keys[j]] })
	for i, k := range keys {
		if i >= 8 {
			break
		}
		fmt.Fprintf(&b, "  %-40s %d\n", k, regions[k])
	}
	return b.String()
}

// ReportAppRTT renders Figure 9.
func (s *Study) ReportAppRTT() string {
	f := crowd.Fig9(s.ds)
	var b strings.Builder
	b.WriteString(crowd.RenderCDFs("Figure 9(a) — raw app RTT CDFs:", map[string]*stats.CDF{
		"All": f.All, "WiFi": f.WiFi, "Cellular": f.Cellular,
	}))
	fmt.Fprintf(&b, "  LTE median: %.0f ms\n", f.MedianLTE)
	b.WriteString(crowd.RenderCDFs(
		fmt.Sprintf("Figure 9(b) — per-app median RTT CDF (%d apps above scaled 1K cutoff):", f.AppsInB),
		map[string]*stats.CDF{"AppMedians": f.PerAppMedians}))
	return b.String()
}

// ReportApps renders Table 5.
func (s *Study) ReportApps() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5 — representative apps:\n")
	fmt.Fprintf(&b, "  %-13s %-20s %8s %10s\n", "Category", "App", "# RTT", "Median")
	for _, r := range crowd.Table5(s.ds) {
		fmt.Fprintf(&b, "  %-13s %-20s %8d %8.1fms\n", r.Category, r.Label, r.N, r.MedianMS)
	}
	return b.String()
}

// ReportDNS renders Figure 10.
func (s *Study) ReportDNS() string {
	f := crowd.Fig10(s.ds)
	var b strings.Builder
	b.WriteString(crowd.RenderCDFs("Figure 10(a) — DNS RTT CDFs:", map[string]*stats.CDF{
		"All": f.All, "WiFi": f.WiFi, "Cellular": f.Cellular,
	}))
	b.WriteString(crowd.RenderCDFs("Figure 10(b) — cellular DNS by generation:", map[string]*stats.CDF{
		"4G LTE": f.LTE, "3G": f.G3, "2G": f.G2,
	}))
	return b.String()
}

// ReportISPs renders Table 6 and Figure 11.
func (s *Study) ReportISPs() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6 — DNS performance of top 15 LTE operators:\n")
	fmt.Fprintf(&b, "  %-22s %-12s %8s %10s\n", "ISP", "Country", "# RTT", "Median")
	for _, r := range crowd.Table6(s.ds, 15) {
		fmt.Fprintf(&b, "  %-22s %-12s %8d %8.1fms\n", r.Name, r.Country, r.N, r.MedianMS)
	}
	cdfs := crowd.Fig11(s.ds, crowd.Fig11Defaults)
	asStats := make(map[string]*stats.CDF, len(cdfs))
	for k, v := range cdfs {
		asStats[k] = v
	}
	b.WriteString(crowd.RenderCDFs("Figure 11 — DNS CDFs of four LTE ISPs:", asStats))
	return b.String()
}

// ReportCaseWhatsapp renders §4.2.2 Case 1.
func (s *Study) ReportCaseWhatsapp() string {
	return crowd.AnalyzeWhatsapp(s.ds).String()
}

// ReportCaseJio renders §4.2.2 Case 2.
func (s *Study) ReportCaseJio() string {
	return crowd.AnalyzeJio(s.ds).String()
}
