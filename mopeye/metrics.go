package mopeye

import (
	"io"
	"net/http"
	"strconv"

	"repro/internal/measure"
	"repro/internal/metrics"
)

// This file is the phone-side half of the observability subsystem:
// WriteMetrics/MetricsHandler expose a Prometheus text exposition over
// the engine's live counters (internal/engine.RegisterMetrics), the
// streaming pipeline's bounded-drop accounting, and sketched per-kind
// RTT quantiles. Every engine instrument is a scrape-time read over
// atomics the hot path already maintains; the only active piece is the
// RTT quantile feed, which rides the same store subscription machinery
// as any other subscriber — bounded ring, drops counted, never
// stalling a relay worker.
//
// The registry is built lazily on first use, so phones that never
// scrape pay nothing. Arm it before the workload when the quantiles
// matter: the subscription observes records from that point on.

// registerStoreMetrics adds the streaming pipeline's instruments,
// shared by Phone and RealPhone.
func registerStoreMetrics(r *metrics.Registry, st *measure.Store) {
	r.CounterFunc("mopeye_stream_dropped_total",
		"Measurements dropped across subscriber rings (bounded-drop contract; zero when healthy).",
		func() float64 { return float64(st.DroppedRecords()) })
	r.GaugeFunc("mopeye_stream_subscribers",
		"Live measurement subscriptions.",
		func() float64 { return float64(st.Subscribers()) })
	r.GaugeFunc("mopeye_store_records",
		"Measurements held in the store.",
		func() float64 { return float64(st.Len()) })
}

// rttQuantileFeed registers the per-kind RTT summaries and returns the
// drain that feeds them from a store subscription.
func rttQuantileFeed(r *metrics.Registry) func(measure.Record) {
	const help = "Opportunistic RTT measurements (ms) by kind, sketched."
	qtcp := r.Quantile("mopeye_phone_rtt_ms", help, 0, metrics.L("kind", "tcp"))
	qdns := r.Quantile("mopeye_phone_rtt_ms", help, 0, metrics.L("kind", "dns"))
	return func(rec measure.Record) {
		if rec.Kind == measure.KindDNS {
			qdns.Observe(rec.Millis())
			return
		}
		qtcp.Observe(rec.Millis())
	}
}

// metricsRegistry builds (once) the phone's registry and starts the
// quantile drain.
func (p *Phone) metricsRegistry() *metrics.Registry {
	p.metricsOnce.Do(func() {
		r := metrics.NewRegistry()
		p.bed.Eng.RegisterMetrics(r)
		registerStoreMetrics(r, p.bed.Store)
		observe := rttQuantileFeed(r)
		p.metricsReg = r

		// The quantile feed is an ordinary subscriber: on a closed phone
		// it is skipped (the instruments stay empty), otherwise its drain
		// joins sinkWG so Close waits for the final observation exactly
		// as it does for attached sinks.
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		sub := p.bed.Store.Subscribe(0, nil)
		p.sinkWG.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.sinkWG.Done()
			for {
				rec, ok := sub.Next(nil)
				if !ok {
					return
				}
				observe(rec)
			}
		}()
	})
	return p.metricsReg
}

// Metrics snapshots the phone's observability state: engine counters
// and gauges, streaming-pipeline accounting, and the sketched RTT
// summaries.
func (p *Phone) Metrics() metrics.Snapshot { return p.metricsRegistry().Gather() }

// WriteMetrics renders the phone's metrics in Prometheus text
// exposition format. The first call arms the registry (and the RTT
// quantile feed); arm it before the workload when the quantiles should
// cover it.
func (p *Phone) WriteMetrics(w io.Writer) error {
	return p.metricsRegistry().WritePrometheus(w)
}

// MetricsHandler serves the phone's metrics over HTTP — GET /metrics
// for a live phone, the same exposition WriteMetrics renders.
func (p *Phone) MetricsHandler() http.Handler { return p.metricsRegistry().Handler() }

// metricsRegistry is the real-plane twin of Phone.metricsRegistry.
func (p *RealPhone) metricsRegistry() *metrics.Registry {
	p.metricsOnce.Do(func() {
		r := metrics.NewRegistry()
		p.eng.RegisterMetrics(r)
		registerStoreMetrics(r, p.store)
		observe := rttQuantileFeed(r)
		p.metricsReg = r

		sub := p.store.Subscribe(0, nil)
		go func() {
			for {
				rec, ok := sub.Next(nil)
				if !ok {
					return
				}
				observe(rec)
			}
		}()
	})
	return p.metricsReg
}

// Metrics snapshots the real phone's observability state.
func (p *RealPhone) Metrics() metrics.Snapshot { return p.metricsRegistry().Gather() }

// WriteMetrics renders the real phone's metrics in Prometheus text
// exposition format.
func (p *RealPhone) WriteMetrics(w io.Writer) error {
	return p.metricsRegistry().WritePrometheus(w)
}

// MetricsHandler serves the real phone's metrics over HTTP.
func (p *RealPhone) MetricsHandler() http.Handler { return p.metricsRegistry().Handler() }

// metricsRegistry builds (once) the fleet's registry: aggregate
// counters plus per-phone status labeled by device stamp. Meaningful
// once Run has completed; scraped mid-run it reports the phones
// finished so far.
func (f *Fleet) metricsRegistry() *metrics.Registry {
	f.metricsOnce.Do(func() {
		r := metrics.NewRegistry()
		r.GaugeFunc("mopeye_fleet_phones",
			"Phones in the fleet roster.",
			func() float64 { return float64(f.Stats().Phones) })
		r.GaugeFunc("mopeye_fleet_failed",
			"Phones whose construction, workload, or sink failed.",
			func() float64 { return float64(f.Stats().Failed) })
		r.CounterFunc("mopeye_fleet_records_total",
			"Records the fleet's collectors shipped.",
			func() float64 { return float64(f.Stats().Records) })
		r.CounterFunc("mopeye_fleet_uploads_total",
			"Upload batches the fleet's collectors shipped.",
			func() float64 { return float64(f.Stats().Uploads) })
		r.GaugeFunc("mopeye_fleet_phone_time_seconds",
			"Longest per-phone workload duration on the phones' own clocks.",
			func() float64 { return f.Stats().PhoneTime.Seconds() })
		r.CollectGauges("mopeye_fleet_phone_up",
			"Per-phone outcome: 1 succeeded, 0 failed.",
			func() []metrics.Sample { return f.phoneSamples(func(st FleetPhoneStatus) float64 {
				if st.Err != nil {
					return 0
				}
				return 1
			}) })
		r.CollectGauges("mopeye_fleet_phone_records",
			"Records shipped per phone.",
			func() []metrics.Sample {
				return f.phoneSamples(func(st FleetPhoneStatus) float64 { return float64(st.Records) })
			})
		r.CollectGauges("mopeye_fleet_phone_elapsed_seconds",
			"Per-phone workload duration on the phone's own clock.",
			func() []metrics.Sample {
				return f.phoneSamples(func(st FleetPhoneStatus) float64 { return st.Elapsed.Seconds() })
			})
		f.metricsReg = r
	})
	return f.metricsReg
}

// phoneSamples maps the per-phone statuses to labeled samples. Two
// FleetPhones may share a device stamp (a reinstalled device), so the
// label carries the roster index as well.
func (f *Fleet) phoneSamples(value func(FleetPhoneStatus) float64) []metrics.Sample {
	sts := f.PhoneStatuses()
	out := make([]metrics.Sample, 0, len(sts))
	for i, st := range sts {
		if st.Device == "" {
			continue // not yet run
		}
		out = append(out, metrics.Sample{
			Labels: []metrics.Label{
				metrics.L("device", st.Device),
				metrics.L("phone", strconv.Itoa(i)),
			},
			Value: value(st),
		})
	}
	return out
}

// Metrics snapshots the fleet's aggregate and per-phone observability
// state.
func (f *Fleet) Metrics() metrics.Snapshot { return f.metricsRegistry().Gather() }

// WriteMetrics renders the fleet's metrics in Prometheus text
// exposition format.
func (f *Fleet) WriteMetrics(w io.Writer) error {
	return f.metricsRegistry().WritePrometheus(w)
}
