package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/crowd"
	"repro/internal/measure"
)

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != "127.0.0.1:8477" || c.shards != 1 || !c.retainRecords || c.spoolSegmentBytes != 0 {
		t.Errorf("defaults: %+v", c)
	}
	o := c.serverOptions()
	if o.RetainRecords != crowd.RetainOn || o.SpoolSegmentBytes != 0 {
		t.Errorf("default options: %+v", o)
	}
}

func TestParseFlagsAll(t *testing.T) {
	c, err := parseFlags([]string{
		"-addr", "0.0.0.0:9999",
		"-spool", "/tmp/spool",
		"-token", "secret",
		"-shards", "8",
		"-retain-records=false",
		"-spool-segment-bytes", "1048576",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != "0.0.0.0:9999" || c.spool != "/tmp/spool" || c.token != "secret" {
		t.Errorf("parsed: %+v", c)
	}
	if c.shards != 8 || c.retainRecords || c.spoolSegmentBytes != 1<<20 {
		t.Errorf("parsed scale flags: %+v", c)
	}
	o := c.serverOptions()
	if o.RetainRecords != crowd.RetainOff || o.SpoolSegmentBytes != 1<<20 ||
		o.SpoolDir != "/tmp/spool" || o.Token != "secret" {
		t.Errorf("options: %+v", o)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-shards", "0"},
		{"-shards", "-2"},
		{"-spool-segment-bytes", "-1"},
		{"-no-such-flag"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("accepted %v", args)
		}
	}
}

// The parsed config builds the advertised server shapes.
func TestNewCollectorShapes(t *testing.T) {
	c, err := parseFlags([]string{"-shards", "1"})
	if err != nil {
		t.Fatal(err)
	}
	single, err := newCollector(c)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if _, ok := single.(*crowd.Server); !ok {
		t.Errorf("-shards 1 built %T", single)
	}

	c, err = parseFlags([]string{"-shards", "4", "-spool", t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := newCollector(c)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	ss, ok := sharded.(*crowd.ShardedServer)
	if !ok {
		t.Fatalf("-shards 4 built %T", sharded)
	}
	if len(ss.Servers()) != 4 {
		t.Errorf("shard count: %d", len(ss.Servers()))
	}
}

func testBatch(dev, key string, ms float64) measure.Batch {
	return measure.Batch{
		Device: dev, Key: key, Seq: 1,
		Records: []measure.Record{{
			Kind: measure.KindTCP, App: "com.example.app", UID: 10001,
			Dst: netip.MustParseAddrPort("203.0.113.7:443"),
			RTT: time.Duration(ms * float64(time.Millisecond)),
			At:  time.Unix(0, 0).UTC(),
		}},
	}
}

func encodeBatch(t *testing.T, b measure.Batch) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := measure.EncodeBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startServe runs serve() on an ephemeral listener, returning its base
// URL, a cancel that delivers the shutdown, and the done channel.
func startServe(t *testing.T, c config, out io.Writer) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, c, ln, out) }()
	url := "http://" + ln.Addr().String()
	// Wait for the listener to answer.
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			return url, cancel, done
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("collector never became ready")
	return "", nil, nil
}

func upload(t *testing.T, url, dev string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/upload", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", measure.BatchContentType)
	req.Header.Set(crowd.DeviceHeader, dev)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestServeGracefulShutdownDrainsAndHeals is the interrupted-restart
// path end to end, in-process: an upload in flight when the shutdown
// signal lands must drain to a committed, spooled batch (not die
// mid-segment), and a restart on the same spool must replay both
// records and dedup keys.
func TestServeGracefulShutdownDrainsAndHeals(t *testing.T) {
	spool := t.TempDir()
	c, err := parseFlags([]string{"-spool", spool})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	url, cancel, done := startServe(t, c, &out)

	if resp := upload(t, url, "p1", bytes.NewReader(encodeBatch(t, testBatch("p1", "p1/k/1", 12)))); resp.StatusCode != http.StatusOK {
		t.Fatalf("first upload: %s", resp.Status)
	}

	// Second upload arrives byte by byte: send half the body, let the
	// shutdown land while the handler is mid-read, then finish. The
	// drain must let this commit complete.
	enc := encodeBatch(t, testBatch("p2", "p2/k/1", 34))
	pr, pw := io.Pipe()
	inflight := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, url+"/v1/upload", pr)
		req.Header.Set("Content-Type", measure.BatchContentType)
		req.Header.Set(crowd.DeviceHeader, "p2")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			inflight <- nil
			return
		}
		inflight <- resp
	}()
	if _, err := pw.Write(enc[:len(enc)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the handler block on the body
	cancel()
	time.Sleep(50 * time.Millisecond) // shutdown is now draining
	if _, err := pw.Write(enc[len(enc)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	resp := <-inflight
	if resp == nil {
		t.Fatal("in-flight upload failed during graceful shutdown")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight upload: %s", resp.Status)
	}
	var reply struct{ Status string }
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil || reply.Status != "accepted" {
		t.Fatalf("in-flight reply: %+v err=%v", reply, err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after shutdown")
	}
	if !strings.Contains(out.String(), "collected 2 records in 2 batches") {
		t.Fatalf("final tally = %q", out.String())
	}

	// Restart on the same spool: both batches replay, and a redelivery
	// of an already-spooled key is absorbed as a duplicate.
	var out2 bytes.Buffer
	url2, cancel2, done2 := startServe(t, c, &out2)
	if resp := upload(t, url2, "p2", bytes.NewReader(enc)); resp.StatusCode != http.StatusOK {
		t.Fatalf("redelivery after restart: %s", resp.Status)
	} else {
		var reply struct{ Status string }
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil || reply.Status != "duplicate" {
			t.Fatalf("redelivery reply: %+v err=%v (restart lost dedup keys)", reply, err)
		}
	}
	statsResp, err := http.Get(url2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sum struct {
		TCPRecords int `json:"tcp_records"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.TCPRecords != 2 {
		t.Fatalf("after restart TCPRecords = %d, want 2 (spool replay)", sum.TCPRecords)
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second serve: %v", err)
	}
	if !strings.Contains(out2.String(), "1 duplicates absorbed") {
		t.Fatalf("restart tally = %q", out2.String())
	}
}

// TestServeMetricsFlag: -metrics exposes the live exposition on both
// server shapes, and the counters move with traffic.
func TestServeMetricsFlag(t *testing.T) {
	for _, shards := range []string{"1", "2"} {
		c, err := parseFlags([]string{"-metrics", "-shards", shards})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		url, cancel, done := startServe(t, c, &out)
		for d := 0; d < 4; d++ {
			dev := fmt.Sprintf("dev-%d", d)
			b := encodeBatch(t, testBatch(dev, dev+"/k", float64(10+d)))
			if resp := upload(t, url, dev, bytes.NewReader(b)); resp.StatusCode != http.StatusOK {
				t.Fatalf("upload: %s", resp.Status)
			}
		}
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards=%s GET /metrics: %s", shards, resp.Status)
		}
		expo := string(raw)
		for _, want := range []string{
			"mopeye_collector_uploads_total 4",
			"mopeye_collector_records_total 4",
			"mopeye_collector_shard_records{shard=",
		} {
			if !strings.Contains(expo, want) {
				t.Errorf("shards=%s /metrics missing %q:\n%s", shards, want, expo)
			}
		}
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("serve: %v", err)
		}
	}
}

// Without -metrics the endpoint stays dark.
func TestServeMetricsOffByDefault(t *testing.T) {
	c, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	url, cancel, done := startServe(t, c, &out)
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics without -metrics: %s, want 404", resp.Status)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
