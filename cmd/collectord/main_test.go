package main

import (
	"testing"

	"repro/internal/crowd"
)

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != "127.0.0.1:8477" || c.shards != 1 || !c.retainRecords || c.spoolSegmentBytes != 0 {
		t.Errorf("defaults: %+v", c)
	}
	o := c.serverOptions()
	if o.RetainRecords != crowd.RetainOn || o.SpoolSegmentBytes != 0 {
		t.Errorf("default options: %+v", o)
	}
}

func TestParseFlagsAll(t *testing.T) {
	c, err := parseFlags([]string{
		"-addr", "0.0.0.0:9999",
		"-spool", "/tmp/spool",
		"-token", "secret",
		"-shards", "8",
		"-retain-records=false",
		"-spool-segment-bytes", "1048576",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != "0.0.0.0:9999" || c.spool != "/tmp/spool" || c.token != "secret" {
		t.Errorf("parsed: %+v", c)
	}
	if c.shards != 8 || c.retainRecords || c.spoolSegmentBytes != 1<<20 {
		t.Errorf("parsed scale flags: %+v", c)
	}
	o := c.serverOptions()
	if o.RetainRecords != crowd.RetainOff || o.SpoolSegmentBytes != 1<<20 ||
		o.SpoolDir != "/tmp/spool" || o.Token != "secret" {
		t.Errorf("options: %+v", o)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-shards", "0"},
		{"-shards", "-2"},
		{"-spool-segment-bytes", "-1"},
		{"-no-such-flag"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("accepted %v", args)
		}
	}
}

// The parsed config builds the advertised server shapes.
func TestNewCollectorShapes(t *testing.T) {
	c, err := parseFlags([]string{"-shards", "1"})
	if err != nil {
		t.Fatal(err)
	}
	single, err := newCollector(c)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if _, ok := single.(*crowd.Server); !ok {
		t.Errorf("-shards 1 built %T", single)
	}

	c, err = parseFlags([]string{"-shards", "4", "-spool", t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := newCollector(c)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	ss, ok := sharded.(*crowd.ShardedServer)
	if !ok {
		t.Fatalf("-shards 4 built %T", sharded)
	}
	if len(ss.Servers()) != 4 {
		t.Errorf("shard count: %d", len(ss.Servers()))
	}
}
