// Command collectord is the crowdsourcing collector server: the wire
// endpoint MopEye phones upload their measurement batches to (§4
// deployment shape). It authenticates device stamps (and a shared
// token when configured), deduplicates batches on their idempotency
// keys, appends accepted batches to a durable spool, and serves the
// assembled dataset back as JSONL.
//
// Endpoints: POST /v1/upload (batch wire encoding), GET /v1/records
// (JSONL dump), GET /v1/stats, GET /healthz.
//
// Usage:
//
//	collectord [-addr 127.0.0.1:8477] [-spool DIR] [-token T]
//
// Feed it from a phone (`mopeye -upload http://127.0.0.1:8477`) or a
// fleet, then analyse with `crowdstudy -serve http://127.0.0.1:8477`
// (live) or `crowdstudy -spool DIR` (offline).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/crowd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8477", "listen address")
	spool := flag.String("spool", "", "durable spool directory (empty = memory only)")
	token := flag.String("token", "", "shared bearer token required on every request (empty = open)")
	flag.Parse()

	srv, err := crowd.NewServer(crowd.ServerOptions{SpoolDir: *spool, Token: *token})
	if err != nil {
		log.Fatal(err)
	}
	if st := srv.Stats(); st.Batches > 0 {
		log.Printf("replayed spool: %d batches, %d records", st.Batches, st.Records)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	log.Printf("collectord listening on http://%s (spool %q)", *addr, *spool)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	if err := srv.Close(); err != nil {
		log.Printf("spool close: %v", err)
	}
	st := srv.Stats()
	fmt.Printf("collected %d records in %d batches (%d duplicates absorbed, %d auth failures, %d bad requests)\n",
		st.Records, st.Batches, st.Duplicates, st.AuthFailures, st.BadRequests)
}
