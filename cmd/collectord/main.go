// Command collectord is the crowdsourcing collector server: the wire
// endpoint MopEye phones upload their measurement batches to (§4
// deployment shape). It authenticates device stamps (and a shared
// token when configured), deduplicates batches on their idempotency
// keys, appends accepted batches to a durable segment-rotating spool,
// maintains streaming per-app/per-network quantile sketches, and
// serves the assembled dataset back as JSONL.
//
// Endpoints: POST /v1/upload (batch wire encoding), GET /v1/records
// (JSONL dump; 404 with -retain-records=false), GET /v1/stats
// (sketched aggregates, O(1) in dataset size), GET /healthz.
//
// Usage:
//
//	collectord [-addr 127.0.0.1:8477] [-spool DIR] [-token T]
//	           [-shards N] [-retain-records=BOOL] [-spool-segment-bytes N]
//
// -shards 1 (the default) runs a single collector; -shards N>1 runs a
// crowd.ShardedServer — N full collectors, each spooling under
// DIR/shard-00i, merged behind one /v1/stats. Feed it from a phone
// (`mopeye -upload http://127.0.0.1:8477`) or a fleet, then analyse
// with `crowdstudy -serve http://127.0.0.1:8477` (live) or
// `crowdstudy -spool DIR` (offline).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/crowd"
)

// config is the parsed command line.
type config struct {
	addr              string
	spool             string
	token             string
	shards            int
	retainRecords     bool
	spoolSegmentBytes int64
}

// parseFlags parses the command line (without running anything), so
// flag handling is unit-testable.
func parseFlags(args []string) (config, error) {
	var c config
	fs := flag.NewFlagSet("collectord", flag.ContinueOnError)
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8477", "listen address")
	fs.StringVar(&c.spool, "spool", "", "durable spool directory (empty = memory only)")
	fs.StringVar(&c.token, "token", "", "shared bearer token required on every request (empty = open)")
	fs.IntVar(&c.shards, "shards", 1, "collector shards: 1 = single server, N>1 = sharded ingest with per-shard spools")
	fs.BoolVar(&c.retainRecords, "retain-records", true, "keep raw records in memory and serve /v1/records (false = sketched aggregates only, bounded memory)")
	fs.Int64Var(&c.spoolSegmentBytes, "spool-segment-bytes", 0, "spool segment size cap in bytes (0 = 64 MiB default)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if c.shards < 1 {
		return config{}, fmt.Errorf("collectord: -shards %d (want >= 1)", c.shards)
	}
	if c.spoolSegmentBytes < 0 {
		return config{}, fmt.Errorf("collectord: -spool-segment-bytes %d (want >= 0)", c.spoolSegmentBytes)
	}
	return c, nil
}

// serverOptions maps the command line onto crowd.ServerOptions.
func (c config) serverOptions() crowd.ServerOptions {
	retain := crowd.RetainOn
	if !c.retainRecords {
		retain = crowd.RetainOff
	}
	return crowd.ServerOptions{
		SpoolDir:          c.spool,
		Token:             c.token,
		RetainRecords:     retain,
		SpoolSegmentBytes: c.spoolSegmentBytes,
	}
}

// collector is what main needs from either server shape.
type collector interface {
	http.Handler
	Stats() crowd.ServerStats
	Close() error
}

// newCollector builds the configured collector: one crowd.Server, or a
// crowd.ShardedServer when -shards asks for more.
func newCollector(c config) (collector, error) {
	if c.shards == 1 {
		return crowd.NewServer(c.serverOptions())
	}
	return crowd.NewShardedServer(c.serverOptions(), c.shards)
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	srv, err := newCollector(c)
	if err != nil {
		log.Fatal(err)
	}
	if st := srv.Stats(); st.Batches > 0 {
		log.Printf("replayed spool: %d batches, %d records", st.Batches, st.Records)
	}

	hs := &http.Server{Addr: c.addr, Handler: srv}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	log.Printf("collectord listening on http://%s (spool %q, shards %d, retain-records %v)",
		c.addr, c.spool, c.shards, c.retainRecords)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	if err := srv.Close(); err != nil {
		log.Printf("spool close: %v", err)
	}
	st := srv.Stats()
	fmt.Printf("collected %d records in %d batches (%d duplicates absorbed, %d auth failures, %d bad requests)\n",
		st.Records, st.Batches, st.Duplicates, st.AuthFailures, st.BadRequests)
}
