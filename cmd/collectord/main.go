// Command collectord is the crowdsourcing collector server: the wire
// endpoint MopEye phones upload their measurement batches to (§4
// deployment shape). It authenticates device stamps (and a shared
// token when configured), deduplicates batches on their idempotency
// keys, appends accepted batches to a durable segment-rotating spool,
// maintains streaming per-app/per-network quantile sketches, and
// serves the assembled dataset back as JSONL.
//
// Endpoints: POST /v1/upload (batch wire encoding), GET /v1/records
// (JSONL dump; 404 with -retain-records=false), GET /v1/stats
// (sketched aggregates, O(1) in dataset size), GET /healthz, and —
// with -metrics — GET /metrics (Prometheus text exposition: upload
// counters, dedup hits, spool segments and bytes, per-shard record
// skew, sketched per-network RTT summaries; with -shards N>1 the
// default view is the exact fan-in merge and ?shard=i drills into one
// collector shard).
//
// Usage:
//
//	collectord [-addr 127.0.0.1:8477] [-spool DIR] [-token T]
//	           [-shards N] [-retain-records=BOOL] [-spool-segment-bytes N]
//	           [-metrics]
//
// -shards 1 (the default) runs a single collector; -shards N>1 runs a
// crowd.ShardedServer — N full collectors, each spooling under
// DIR/shard-00i, merged behind one /v1/stats. Feed it from a phone
// (`mopeye -upload http://127.0.0.1:8477`) or a fleet, then analyse
// with `crowdstudy -serve http://127.0.0.1:8477` (live) or
// `crowdstudy -spool DIR` (offline).
//
// SIGINT/SIGTERM shut the collector down gracefully: the listener
// stops accepting, in-flight uploads drain (their commits and spool
// appends complete), and the spool closes at a batch boundary — a
// restart replays it intact.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/crowd"
)

// config is the parsed command line.
type config struct {
	addr              string
	spool             string
	token             string
	shards            int
	retainRecords     bool
	spoolSegmentBytes int64
	metrics           bool
}

// parseFlags parses the command line (without running anything), so
// flag handling is unit-testable.
func parseFlags(args []string) (config, error) {
	var c config
	fs := flag.NewFlagSet("collectord", flag.ContinueOnError)
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8477", "listen address")
	fs.StringVar(&c.spool, "spool", "", "durable spool directory (empty = memory only)")
	fs.StringVar(&c.token, "token", "", "shared bearer token required on every request (empty = open)")
	fs.IntVar(&c.shards, "shards", 1, "collector shards: 1 = single server, N>1 = sharded ingest with per-shard spools")
	fs.BoolVar(&c.retainRecords, "retain-records", true, "keep raw records in memory and serve /v1/records (false = sketched aggregates only, bounded memory)")
	fs.Int64Var(&c.spoolSegmentBytes, "spool-segment-bytes", 0, "spool segment size cap in bytes (0 = 64 MiB default)")
	fs.BoolVar(&c.metrics, "metrics", false, "serve GET /metrics (Prometheus text exposition; token-exempt like /healthz)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if c.shards < 1 {
		return config{}, fmt.Errorf("collectord: -shards %d (want >= 1)", c.shards)
	}
	if c.spoolSegmentBytes < 0 {
		return config{}, fmt.Errorf("collectord: -spool-segment-bytes %d (want >= 0)", c.spoolSegmentBytes)
	}
	return c, nil
}

// serverOptions maps the command line onto crowd.ServerOptions.
func (c config) serverOptions() crowd.ServerOptions {
	retain := crowd.RetainOn
	if !c.retainRecords {
		retain = crowd.RetainOff
	}
	return crowd.ServerOptions{
		SpoolDir:          c.spool,
		Token:             c.token,
		RetainRecords:     retain,
		SpoolSegmentBytes: c.spoolSegmentBytes,
		ExposeMetrics:     c.metrics,
	}
}

// collector is what main needs from either server shape.
type collector interface {
	http.Handler
	Stats() crowd.ServerStats
	Close() error
}

// newCollector builds the configured collector: one crowd.Server, or a
// crowd.ShardedServer when -shards asks for more.
func newCollector(c config) (collector, error) {
	if c.shards == 1 {
		return crowd.NewServer(c.serverOptions())
	}
	return crowd.NewShardedServer(c.serverOptions(), c.shards)
}

// drainTimeout bounds the graceful-shutdown drain; connections still
// alive after it are cut (their senders retry with the same
// idempotency key, so nothing is lost).
const drainTimeout = 5 * time.Second

// serve runs the collector on ln until ctx is cancelled, then shuts
// down gracefully: stop accepting, drain in-flight uploads (commits
// and spool appends complete), close the spool at a batch boundary,
// and print the final tally to out. Factored out of main so the
// interrupted-restart path is testable in-process.
func serve(ctx context.Context, c config, ln net.Listener, out io.Writer) error {
	srv, err := newCollector(c)
	if err != nil {
		return err
	}
	if st := srv.Stats(); st.Batches > 0 {
		log.Printf("replayed spool: %d batches, %d records", st.Batches, st.Records)
	}
	log.Printf("collectord listening on http://%s (spool %q, shards %d, retain-records %v, metrics %v)",
		ln.Addr(), c.spool, c.shards, c.retainRecords, c.metrics)

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			// Drain expired: cut the stragglers. Their uploads were not
			// acknowledged, so the transport's retry redelivers them.
			hs.Close()
		}
		<-serveErr // always http.ErrServerClosed after Shutdown/Close
	case err := <-serveErr:
		// Listener failure, not a shutdown: still close the spool
		// cleanly before reporting.
		srv.Close()
		return err
	}

	closeErr := srv.Close()
	st := srv.Stats()
	fmt.Fprintf(out, "collected %d records in %d batches (%d duplicates absorbed, %d auth failures, %d bad requests)\n",
		st.Records, st.Batches, st.Duplicates, st.AuthFailures, st.BadRequests)
	return closeErr
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, c, ln, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
