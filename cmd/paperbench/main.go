// Command paperbench runs the §4.1 evaluation experiments — measurement
// accuracy and relay overhead — and prints each table/figure in the
// paper's layout. Beyond the paper, -exp parallel sweeps the engine's
// worker counts under a multi-app packet flood (a workload the
// single-phone paper never exercises), -exp dispatch runs the same
// sweep over a zero-delay loopback network so the result is the engine
// ceiling rather than the simulated wire, and -exp fleet runs N phones
// fanning their Collector uploads into one collector server, in
// process and over HTTP, to price the wire.
//
// Usage:
//
//	paperbench [-exp all|table1|table2|table3|table4|fig5|overhead|parallel|dispatch|fleet] [-fast] [-workers 1,2,4] [-readbatch 0] [-subs 0] [-phones 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/mopeye"
)

// batchLabel renders a ReadBatch sweep value ("default" for 0).
func batchLabel(rb int) string {
	if rb == 0 {
		return "default"
	}
	return strconv.Itoa(rb)
}

// parseWorkers turns "1,2,4" into a sweep list.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, table2, table3, table4, fig5, overhead, parallel, dispatch, fleet")
	fast := flag.Bool("fast", false, "smaller workloads / shorter runs")
	workers := flag.String("workers", "1,2,4", "worker counts swept by -exp parallel/dispatch")
	readbatch := flag.String("readbatch", "0", "read/write burst sizes swept by -exp parallel/dispatch (comma list; 0 = engine default of 64, 1 = batching off)")
	subs := flag.Int("subs", 0, "live measurement subscribers attached during -exp dispatch (streaming-pipeline overhead)")
	phones := flag.Int("phones", 8, "fleet size for -exp fleet")
	flag.Parse()

	// parseBatches turns "-readbatch 1,64" into a sweep list (0 = the
	// engine default).
	parseBatches := func() []int {
		var out []int
		for _, part := range strings.Split(*readbatch, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 0 {
				log.Fatalf("bad read batch %q", part)
			}
			out = append(out, n)
		}
		return out
	}

	run := func(name string) {
		switch name {
		case "table1":
			o := mopeye.DefaultTable1Options()
			if *fast {
				o.Pages = 6
			}
			res, err := mopeye.RunTable1(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Table 1 — delay of writing packets to the VPN tunnel:")
			fmt.Println(res)
		case "table2":
			o := mopeye.DefaultTable2Options()
			if *fast {
				o.RunsPerDest = 1
			}
			rows, err := mopeye.RunTable2(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Table 2 — measurement accuracy of MopEye and MobiPerf (ms):")
			fmt.Println(mopeye.RenderTable2(rows))
		case "table3":
			o := mopeye.DefaultTable3Options()
			if *fast {
				o.Duration = time.Second
			}
			res, err := mopeye.RunTable3(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Table 3 — download and upload throughput overhead (Mbps):")
			fmt.Println(res)
		case "table4":
			o := mopeye.DefaultTable4Options()
			if *fast {
				o.Duration = 1500 * time.Millisecond
			}
			res, err := mopeye.RunTable4(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Table 4 — resource overhead during a streamed video:")
			fmt.Println(res)
		case "overhead":
			o := mopeye.DefaultLatencyOverheadOptions()
			if *fast {
				o.Rounds = 12
			}
			res, err := mopeye.RunLatencyOverhead(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res)
		case "fig5":
			o := mopeye.DefaultFig5Options()
			if *fast {
				o.Pages = 10
			}
			res, err := mopeye.RunFig5(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res)
		case "parallel":
			o := mopeye.DefaultParallelBenchOptions()
			sweep, err := parseWorkers(*workers)
			if err != nil {
				log.Fatal(err)
			}
			o.WorkerCounts = sweep
			if *fast {
				o.EchoesPerConn = 10
			}
			for _, rb := range parseBatches() {
				o.ReadBatch = rb
				res, err := mopeye.RunParallelBench(o)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("Engine scaling — multi-app flood across worker counts (readbatch=%s):\n", batchLabel(rb))
				fmt.Println(res)
			}
		case "dispatch":
			o := mopeye.DefaultDispatchBenchOptions()
			sweep, err := parseWorkers(*workers)
			if err != nil {
				log.Fatal(err)
			}
			o.WorkerCounts = sweep
			o.Subscribers = *subs
			if *fast {
				o.EchoesPerConn = 15
				o.UDPPerConn = 5
			}
			for _, rb := range parseBatches() {
				o.ReadBatch = rb
				res, err := mopeye.RunDispatchBench(o)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("Engine ceiling — zero-delay loopback flood across worker counts (readbatch=%s, subscribers=%d):\n",
					batchLabel(rb), *subs)
				fmt.Println(res)
			}
		case "fleet":
			o := mopeye.DefaultFleetBenchOptions()
			o.Phones = *phones
			if *fast {
				o.ConnsPerPhone = 6
				o.EchoesPerConn = 4
			}
			res, err := mopeye.RunFleetBench(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("Fleet fan-in — %d phones into one collector, in-process vs HTTP upload:\n", o.Phones)
			fmt.Println(res)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "fig5", "overhead", "parallel", "dispatch", "fleet"} {
			run(name)
		}
		return
	}
	run(*exp)
}
