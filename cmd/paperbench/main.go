// Command paperbench runs the §4.1 evaluation experiments — measurement
// accuracy and relay overhead — and prints each table/figure in the
// paper's layout. Beyond the paper, -exp parallel sweeps the engine's
// worker counts under a multi-app packet flood (a workload the
// single-phone paper never exercises), -exp dispatch runs the same
// sweep over a zero-delay loopback network so the result is the engine
// ceiling rather than the simulated wire, and -exp fleet runs N phones
// fanning their Collector uploads into one collector server, in
// process and over HTTP, to price the wire.
//
// The sweeps take ablation knobs: -readbatch sweeps burst sizes
// (explicit N pins, "auto" or 0 runs the AIMD governor), and
// -dispatcher shared runs the legacy shared-selector topology against
// the default per-worker selectors. -cpuprofile/-memprofile write
// pprof profiles of whatever experiment runs, so ceiling hotspots are
// inspectable without editing code (workflow in EXPERIMENTS.md).
//
// -exp scenarios runs the scenario matrix: adverse network-condition
// profiles (-profiles) crossed with trace-driven fleet workloads
// (-workloads), each cell a mini-fleet with one planted adverse phone
// whose measurements are checked for truthfulness against the
// injected conditions. Any violation exits nonzero (the CI gate).
// -cell-ms and -cell-phones size the cells; -workers, when given,
// sweeps the engine worker count as a third axis.
//
// Usage:
//
// -exp ingest is the collector load harness: N simulated devices (no
// engine) push synthesized batches through real HTTPTransports into a
// sharded retain-off collector, reporting records/sec, upload-latency
// quantiles, dedup-map size and heap growth. It is deliberately not
// part of -exp all — it is a load test, sized by -devices (100k
// default, 1M for the fleet-scale ceiling), with -ingest-floor as the
// CI records/sec gate and -ingest-verify for sketch-vs-exact checking.
//
// -exp ceiling compares the engine's device-read ceiling across data
// planes: with -tun sim (the default) it reruns the zero-delay netsim
// dispatch sweep; with -tun real it opens a kernel TUN device (build
// with -tags realtun, run as root), routes a TEST-NET-2 subnet into
// it, and floods it with kernel UDP while the engine drains it. The
// real arm skips cleanly — exit 0, with a reason — when the build,
// privileges or /dev/net/tun are missing, so it can sit in CI behind
// the privileged gate. Like ingest, ceiling is not part of -exp all.
//
// Usage:
//
//	paperbench [-exp all|table1|table2|table3|table4|fig5|overhead|parallel|dispatch|fleet|ingest|scenarios|ceiling] [-fast] [-workers 1,2,4] [-readbatch auto,64] [-dispatcher sharded|shared] [-subs 0] [-metrics] [-phones 8] [-devices 100000] [-ingest-shards 4] [-ingest-floor 0] [-ingest-verify] [-metrics-addr 127.0.0.1:9137] [-profiles a,b] [-workloads web,video] [-cell-ms 2000] [-cell-phones 3] [-tun sim|real] [-tun-name pbench0] [-upstream direct|socks5://host:port] [-cpuprofile f] [-memprofile f]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/tun/lintun"
	"repro/internal/upstream"
	"repro/mopeye"
)

// batchArm is one -readbatch sweep entry: a pinned burst size, or the
// AIMD governor (spelled "auto" or 0) with the engine-default ceiling.
type batchArm struct {
	n    int
	auto bool
}

// label renders the arm for table headers.
func (a batchArm) label() string {
	if a.auto {
		return "auto"
	}
	if a.n == 0 {
		return "default"
	}
	return strconv.Itoa(a.n)
}

// dataPlane is the parsed -tun/-tun-name/-upstream flag triple, shared
// with cmd/mopeye's semantics: the real plane unlocks the device name
// and upstream knobs, the sim plane rejects them.
type dataPlane struct {
	tun      string // "sim" or "real"
	tunName  string
	upstream string
}

// validate enforces the flag contract; it is the unit-testable core of
// the -tun/-upstream handling.
func (d dataPlane) validate() error {
	switch d.tun {
	case "sim", "real":
	default:
		return fmt.Errorf("bad -tun %q (want sim or real)", d.tun)
	}
	if d.tun == "sim" {
		if d.tunName != "" {
			return fmt.Errorf("-tun-name needs -tun real")
		}
		if d.upstream != "" {
			return fmt.Errorf("-upstream needs -tun real (the sim plane has no kernel exit)")
		}
		return nil
	}
	if _, err := upstream.ParseSpec(d.upstream); err != nil {
		return err
	}
	return nil
}

// parseWorkers turns "1,2,4" into a sweep list.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, table2, table3, table4, fig5, overhead, parallel, dispatch, fleet, ingest, scenarios, ceiling")
	fast := flag.Bool("fast", false, "smaller workloads / shorter runs")
	workers := flag.String("workers", "1,2,4", "worker counts swept by -exp parallel/dispatch")
	readbatch := flag.String("readbatch", "64", "read/write burst sizes swept by -exp parallel/dispatch (comma list; explicit N pins it, 1 = batching off; 0 or auto = AIMD self-tuning)")
	dispatcher := flag.String("dispatcher", "sharded", "multi-worker topology for -exp parallel/dispatch: sharded (per-worker selectors) or shared (legacy dispatcher ablation)")
	subs := flag.Int("subs", 0, "live measurement subscribers attached during -exp dispatch (streaming-pipeline overhead)")
	metricsFlag := flag.Bool("metrics", false, "arm the phone observability registry during -exp dispatch and scrape it through the flood (the instrumentation-cost arm; compare against a run without it)")
	metricsAddr := flag.String("metrics-addr", "", "serve the collector's /metrics on this address during -exp ingest, scrapeable live mid-load (e.g. 127.0.0.1:9137)")
	phones := flag.Int("phones", 8, "fleet size for -exp fleet")
	devices := flag.Int("devices", 100_000, "simulated device count for -exp ingest")
	ingestShards := flag.Int("ingest-shards", 4, "collector shards for -exp ingest")
	ingestFloor := flag.Float64("ingest-floor", 0, "minimum records/sec for -exp ingest; below it the run exits nonzero (CI smoke gate)")
	ingestVerify := flag.Bool("ingest-verify", false, "verify sketched medians against exact client-side medians during -exp ingest (costs O(records) memory)")
	profiles := flag.String("profiles", "", "comma list of condition profiles for -exp scenarios (empty = all)")
	workloadsList := flag.String("workloads", "", "comma list of workload generators for -exp scenarios (empty = all)")
	cellMS := flag.Int("cell-ms", 0, "per-cell workload duration in ms for -exp scenarios (0 = default)")
	cellPhones := flag.Int("cell-phones", 0, "phones per scenario cell including the planted one (0 = default)")
	tunFlag := flag.String("tun", "sim", "data plane for -exp ceiling: sim (emulated netsim device) or real (kernel TUN; -tags realtun build, root)")
	tunName := flag.String("tun-name", "", "TUN device name for -tun real (empty lets the kernel pick)")
	upstreamFlag := flag.String("upstream", "", "upstream exit for -tun real: direct (default) or socks5://[user:pass@]host:port")
	ceilingMS := flag.Int("ceiling-ms", 3000, "flood duration in ms for the -exp ceiling real arm")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	flag.Parse()

	plane := dataPlane{tun: *tunFlag, tunName: *tunName, upstream: *upstreamFlag}
	if err := plane.validate(); err != nil {
		log.Fatal(err)
	}

	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})

	var sharedDispatcher bool
	switch *dispatcher {
	case "sharded":
	case "shared":
		sharedDispatcher = true
	default:
		log.Fatalf("bad -dispatcher %q (want sharded or shared)", *dispatcher)
	}

	// parseBatches turns "-readbatch 1,64,auto" into sweep arms ("auto"
	// and 0 select the AIMD governor; explicit N pins the burst size).
	parseBatches := func() []batchArm {
		var out []batchArm
		for _, part := range strings.Split(*readbatch, ",") {
			part = strings.TrimSpace(part)
			if part == "auto" || part == "0" {
				out = append(out, batchArm{auto: true})
				continue
			}
			n, err := strconv.Atoi(part)
			if err != nil || n < 0 {
				log.Fatalf("bad read batch %q (want N or auto)", part)
			}
			out = append(out, batchArm{n: n})
		}
		return out
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // surface live allocations, not GC timing noise
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	run := func(name string) {
		switch name {
		case "table1":
			o := mopeye.DefaultTable1Options()
			if *fast {
				o.Pages = 6
			}
			res, err := mopeye.RunTable1(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Table 1 — delay of writing packets to the VPN tunnel:")
			fmt.Println(res)
		case "table2":
			o := mopeye.DefaultTable2Options()
			if *fast {
				o.RunsPerDest = 1
			}
			rows, err := mopeye.RunTable2(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Table 2 — measurement accuracy of MopEye and MobiPerf (ms):")
			fmt.Println(mopeye.RenderTable2(rows))
		case "table3":
			o := mopeye.DefaultTable3Options()
			if *fast {
				o.Duration = time.Second
			}
			res, err := mopeye.RunTable3(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Table 3 — download and upload throughput overhead (Mbps):")
			fmt.Println(res)
		case "table4":
			o := mopeye.DefaultTable4Options()
			if *fast {
				o.Duration = 1500 * time.Millisecond
			}
			res, err := mopeye.RunTable4(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Table 4 — resource overhead during a streamed video:")
			fmt.Println(res)
		case "overhead":
			o := mopeye.DefaultLatencyOverheadOptions()
			if *fast {
				o.Rounds = 12
			}
			res, err := mopeye.RunLatencyOverhead(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res)
		case "fig5":
			o := mopeye.DefaultFig5Options()
			if *fast {
				o.Pages = 10
			}
			res, err := mopeye.RunFig5(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res)
		case "parallel":
			o := mopeye.DefaultParallelBenchOptions()
			sweep, err := parseWorkers(*workers)
			if err != nil {
				log.Fatal(err)
			}
			o.WorkerCounts = sweep
			if *fast {
				o.EchoesPerConn = 10
			}
			o.SharedDispatcher = sharedDispatcher
			for _, rb := range parseBatches() {
				o.ReadBatch, o.ReadBatchAuto = rb.n, rb.auto
				res, err := mopeye.RunParallelBench(o)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("Engine scaling — multi-app flood across worker counts (readbatch=%s, dispatcher=%s):\n",
					rb.label(), *dispatcher)
				fmt.Println(res)
			}
		case "dispatch":
			o := mopeye.DefaultDispatchBenchOptions()
			sweep, err := parseWorkers(*workers)
			if err != nil {
				log.Fatal(err)
			}
			o.WorkerCounts = sweep
			o.Subscribers = *subs
			o.Metrics = *metricsFlag
			if *fast {
				o.EchoesPerConn = 15
				o.UDPPerConn = 5
			}
			o.SharedDispatcher = sharedDispatcher
			for _, rb := range parseBatches() {
				o.ReadBatch, o.ReadBatchAuto = rb.n, rb.auto
				res, err := mopeye.RunDispatchBench(o)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("Engine ceiling — zero-delay loopback flood across worker counts (readbatch=%s, dispatcher=%s, subscribers=%d, metrics=%v):\n",
					rb.label(), *dispatcher, *subs, *metricsFlag)
				fmt.Println(res)
			}
		case "fleet":
			o := mopeye.DefaultFleetBenchOptions()
			o.Phones = *phones
			if *fast {
				o.ConnsPerPhone = 6
				o.EchoesPerConn = 4
			}
			res, err := mopeye.RunFleetBench(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("Fleet fan-in — %d phones into one collector, in-process vs HTTP upload:\n", o.Phones)
			fmt.Println(res)
		case "ingest":
			o := mopeye.DefaultIngestBenchOptions()
			o.Devices = *devices
			o.ServerShards = *ingestShards
			o.VerifyExact = *ingestVerify
			o.MetricsAddr = *metricsAddr
			if *fast {
				o.Devices = min(o.Devices, 10_000)
			}
			res, err := mopeye.RunIngestBench(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("Collector ingest — %d simulated devices through the HTTP upload path into a %d-shard collector (retain-records off):\n",
				res.Devices, o.ServerShards)
			fmt.Println(res)
			if *ingestFloor > 0 && res.RecordsPerSec < *ingestFloor {
				log.Fatalf("ingest throughput %.0f records/sec below floor %.0f", res.RecordsPerSec, *ingestFloor)
			}
		case "scenarios":
			o := mopeye.ScenarioMatrixOptions{
				PhonesPerCell: *cellPhones,
				CellDuration:  time.Duration(*cellMS) * time.Millisecond,
				Seed:          1,
			}
			if *profiles != "" {
				o.Profiles = splitList(*profiles)
			}
			if *workloadsList != "" {
				o.Workloads = splitList(*workloadsList)
			}
			// Fast mode shrinks the matrix, not the cell duration: the
			// slow-paced workloads (chat/sync/video) need the full cell to
			// accumulate the minimum samples the truthfulness checks
			// demand, so cutting time would manufacture violations. The
			// web workload alone still exercises every profile.
			if *fast && *workloadsList == "" {
				o.Workloads = []string{"web"}
			}
			// -workers sweeps the engine worker count as a third matrix
			// axis when given explicitly; the default sweep is for the
			// scaling experiments, so scenarios only honour it when set.
			sweep := []int{0}
			if workersSet {
				s, err := parseWorkers(*workers)
				if err != nil {
					log.Fatal(err)
				}
				sweep = s
			}
			violations := 0
			for _, w := range sweep {
				o.Workers = w
				res, err := mopeye.RunScenarioMatrix(context.Background(), o)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("Scenario matrix — condition profiles x workloads, truthfulness-checked (workers=%s):\n", workersLabel(w))
				fmt.Println(res)
				for _, f := range res.Failures() {
					fmt.Println("VIOLATION:", f)
					violations++
				}
			}
			if violations > 0 {
				log.Fatalf("scenario matrix: %d truthfulness violations", violations)
			}
		case "ceiling":
			// The netsim arm always runs: it is the baseline the real
			// arm is compared against.
			o := mopeye.DefaultDispatchBenchOptions()
			sweep, err := parseWorkers(*workers)
			if err != nil {
				log.Fatal(err)
			}
			o.WorkerCounts = sweep
			if *fast {
				o.EchoesPerConn = 15
				o.UDPPerConn = 5
			}
			res, err := mopeye.RunDispatchBench(o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ceiling, netsim arm — zero-delay emulated device across worker counts:")
			fmt.Println(res)
			if plane.tun != "real" {
				fmt.Println("Ceiling, real arm — skipped: run with -tun real (requires a -tags realtun build and root).")
				break
			}
			for _, rb := range parseBatches() {
				for _, w := range sweep {
					runRealCeiling(mopeye.RealCeilingOptions{
						TunName:       plane.tunName,
						Upstream:      plane.upstream,
						Workers:       w,
						ReadBatch:     rb.n,
						ReadBatchAuto: rb.auto,
						Duration:      time.Duration(*ceilingMS) * time.Millisecond,
					}, rb.label())
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "fig5", "overhead", "parallel", "dispatch", "fleet", "scenarios"} {
			run(name)
		}
		return
	}
	run(*exp)
}

// realCeilingSubnet is the TEST-NET-2 range the real ceiling arm
// routes into its TUN device — deliberately disjoint from netsim's
// TEST-NET-1 (192.0.2.0/24) so a host that also runs the simulated
// experiments never sees a route collision.
const realCeilingSubnet = "198.51.100.1/24"

// runRealCeiling runs one real-TUN ceiling arm, skipping cleanly (exit
// 0, with the reason) when the build, privileges or /dev/net/tun are
// missing. Interface setup execs `ip`, so this stays linux-and-root
// territory by construction.
func runRealCeiling(o mopeye.RealCeilingOptions, batchLabel string) {
	if os.Geteuid() != 0 {
		fmt.Println("Ceiling, real arm — skipped: needs root (or CAP_NET_ADMIN) to open and address a TUN device.")
		return
	}
	o.Setup = func(dev string) error {
		for _, args := range [][]string{
			{"addr", "add", realCeilingSubnet, "dev", dev},
			{"link", "set", "dev", dev, "up"},
		} {
			cmd := exec.Command("ip", args...)
			if out, err := cmd.CombinedOutput(); err != nil {
				return fmt.Errorf("ip %s: %v: %s", strings.Join(args, " "), err, strings.TrimSpace(string(out)))
			}
		}
		return nil
	}
	res, err := mopeye.RunRealCeiling(o)
	if err != nil {
		if errors.Is(err, lintun.ErrUnsupported) {
			fmt.Println("Ceiling, real arm — skipped: this build has no kernel TUN backend (rebuild with -tags realtun on linux).")
			return
		}
		if errors.Is(err, os.ErrNotExist) || errors.Is(err, os.ErrPermission) {
			fmt.Printf("Ceiling, real arm — skipped: /dev/net/tun unavailable (%v).\n", err)
			return
		}
		log.Fatal(err)
	}
	fmt.Printf("Ceiling, real arm (workers=%s, readbatch=%s):\n", workersLabel(o.Workers), batchLabel)
	fmt.Println(res)
}

// splitList parses a comma-separated name list.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// workersLabel renders a scenario worker-count arm (0 = engine default).
func workersLabel(w int) string {
	if w == 0 {
		return "default"
	}
	return strconv.Itoa(w)
}
