package main

import (
	"strings"
	"testing"
)

func TestDataPlaneValidate(t *testing.T) {
	ok := []dataPlane{
		{tun: "sim"},
		{tun: "real"},
		{tun: "real", tunName: "pbench0"},
		{tun: "real", upstream: "direct"},
		{tun: "real", upstream: "socks5://user:pw@127.0.0.1:1080"},
	}
	for _, d := range ok {
		if err := d.validate(); err != nil {
			t.Errorf("validate(%+v) = %v, want nil", d, err)
		}
	}
}

func TestDataPlaneValidateRejects(t *testing.T) {
	cases := []struct {
		d    dataPlane
		want string
	}{
		{dataPlane{tun: "bogus"}, "-tun"},
		{dataPlane{tun: ""}, "-tun"},
		{dataPlane{tun: "sim", tunName: "x0"}, "-tun-name needs -tun real"},
		{dataPlane{tun: "sim", upstream: "direct"}, "-upstream needs -tun real"},
		{dataPlane{tun: "real", upstream: "http://1.2.3.4:8080"}, "unsupported scheme"},
		{dataPlane{tun: "real", upstream: "socks5://hostonly"}, "host:port"},
	}
	for _, c := range cases {
		err := c.d.validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("validate(%+v) = %v, want containing %q", c.d, err, c.want)
		}
	}
}
