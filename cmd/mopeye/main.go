// Command mopeye runs the MopEye engine and prints the opportunistic
// per-app measurements, like watching the app's all-app view
// (Figure 1a) fill up.
//
// By default the engine runs over a simulated phone and workload. With
// -tun real it attaches to a kernel TUN device instead (build with
// `-tags realtun`, run privileged): packets the host routes into the
// device are relayed through kernel sockets — directly, or through a
// SOCKS5 proxy with -upstream — and every relayed connection yields a
// per-UID measurement, exactly as on the simulated plane.
//
// With -follow each measurement is printed live as the engine records
// it (the streaming Subscribe API); with -jsonl the measurement
// stream goes to stdout as JSON Lines — one object per record, ready
// to pipe into jq or a collector — and the human-readable report
// moves to stderr. The two compose: `mopeye -follow -jsonl | jq .rtt_ns`.
//
// With -upload the phone runs the paper's §4 crowdsourcing loop for
// real: a Collector batches the measurements and ships them to a
// collector server (cmd/collectord) over HTTP with retry and
// idempotency-keyed dedup.
//
// With -dash the terminal becomes a live per-app dashboard — RTT
// sparklines, DNS/UDP drop counters, engine gauges — refreshing on the
// phone's clock, on the simulated and real data planes alike;
// -dash-addr additionally serves the same frame (and the phone's
// Prometheus /metrics exposition) over HTTP.
//
// Usage:
//
//	mopeye [-apps N] [-conns N] [-pages N] [-realistic] [-variant mopeye|toyvpn|haystack] [-workers N] [-readbatch N|auto] [-follow] [-jsonl] [-dash [-dash-addr HOST:PORT]] [-upload URL [-device D] [-token T]]
//	mopeye -tun real [-tun-name mopeye0] [-upstream socks5://host:port] [-duration 30s] [-jsonl] [-dash [-dash-addr HOST:PORT]]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/baselines/haystack"
	"repro/internal/engine"
	"repro/internal/upstream"
	"repro/mopeye"
)

// config is the parsed command line.
type config struct {
	apps      int
	pages     int
	conns     int
	realistic bool
	variant   string
	workers   int
	readBatch int
	readAuto  bool
	follow    bool
	jsonl     bool
	dash      bool
	dashAddr  string
	upload    string
	device    string
	token     string

	// Real data plane (-tun real).
	tun      string
	tunName  string
	upstream string
	duration time.Duration
}

// parseFlags parses and validates the command line (without running
// anything), so flag handling is unit-testable.
func parseFlags(args []string) (config, error) {
	var c config
	var readbatch string
	fs := flag.NewFlagSet("mopeye", flag.ContinueOnError)
	fs.IntVar(&c.apps, "apps", 4, "number of simulated apps")
	fs.IntVar(&c.pages, "pages", 6, "workload rounds per app")
	fs.IntVar(&c.conns, "conns", 4, "concurrent connections per round")
	fs.BoolVar(&c.realistic, "realistic", true, "enable Android-like cost models")
	fs.StringVar(&c.variant, "variant", "mopeye", "engine variant: mopeye, toyvpn or haystack")
	fs.IntVar(&c.workers, "workers", 1, "packet-processing workers (1 = paper-faithful MainWorker)")
	fs.StringVar(&readbatch, "readbatch", "auto", "multi-worker read burst size: explicit N pins it (1 = batching off), 0 or auto self-tunes (AIMD up to the default ceiling of 64)")
	fs.BoolVar(&c.follow, "follow", false, "print each measurement live as the engine records it")
	fs.BoolVar(&c.jsonl, "jsonl", false, "stream measurements to stdout as JSON Lines (report moves to stderr)")
	fs.BoolVar(&c.dash, "dash", false, "render a live per-app RTT dashboard (sparklines, engine gauges) refreshing on the phone's clock")
	fs.StringVar(&c.dashAddr, "dash-addr", "", "additionally serve the dashboard over HTTP on this address (GET / text frame, GET /metrics Prometheus exposition); implies -dash")
	fs.StringVar(&c.upload, "upload", "", "collector server base URL (e.g. http://127.0.0.1:8477): upload measurement batches over HTTP as they accrue")
	fs.StringVar(&c.device, "device", "cli-phone", "device stamp for uploaded records")
	fs.StringVar(&c.token, "token", "", "collector bearer token")
	fs.StringVar(&c.tun, "tun", "sim", "data plane: sim (emulated phone + workload) or real (kernel TUN device; needs -tags realtun and privileges)")
	fs.StringVar(&c.tunName, "tun-name", "", "TUN device name to create (real plane only; empty = kernel-assigned)")
	fs.StringVar(&c.upstream, "upstream", "", "where relayed flows exit (real plane only): direct (default) or socks5://[user:pass@]host:port")
	fs.DurationVar(&c.duration, "duration", 30*time.Second, "how long to monitor on the real plane (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}

	// The -readbatch spelling: an explicit N pins the burst size, "0" or
	// "auto" selects the AIMD governor (ReadBatch stays 0, so the engine
	// default becomes the governor's ceiling). Either way the knob only
	// matters at -workers > 1.
	if readbatch == "auto" || readbatch == "0" {
		c.readAuto = true
	} else {
		n, err := strconv.Atoi(readbatch)
		if err != nil || n < 0 {
			return config{}, fmt.Errorf("mopeye: bad -readbatch %q (want N or auto)", readbatch)
		}
		c.readBatch = n
	}

	switch c.variant {
	case "mopeye", "toyvpn", "haystack":
	default:
		return config{}, fmt.Errorf("mopeye: unknown -variant %q (want mopeye, toyvpn or haystack)", c.variant)
	}

	// -dash-addr implies the dashboard; the dashboard owns the
	// terminal, so the other live printers are mutually exclusive with
	// it.
	if c.dashAddr != "" {
		c.dash = true
	}
	if c.dash && c.follow {
		return config{}, fmt.Errorf("mopeye: -dash and -follow both own the terminal; pick one")
	}
	if c.dash && c.jsonl {
		return config{}, fmt.Errorf("mopeye: -dash and -jsonl conflict; scrape -dash-addr instead")
	}

	switch c.tun {
	case "sim":
		if c.tunName != "" {
			return config{}, fmt.Errorf("mopeye: -tun-name needs -tun real")
		}
		if c.upstream != "" {
			return config{}, fmt.Errorf("mopeye: -upstream needs -tun real (the simulated plane dials the emulated network)")
		}
	case "real":
		if _, err := upstream.ParseSpec(c.upstream); err != nil {
			return config{}, err
		}
	default:
		return config{}, fmt.Errorf("mopeye: bad -tun %q (want sim or real)", c.tun)
	}
	return c, nil
}

func (c config) engineConfig() engine.Config {
	switch c.variant {
	case "toyvpn":
		return engine.ToyVpn()
	case "haystack":
		return haystack.Config()
	default:
		return engine.Default()
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.tun == "real" {
		if err := runReal(cfg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runSim(cfg, os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// runReal attaches the engine to a kernel TUN device and reports what
// the host's routed traffic measures.
func runReal(cfg config) error {
	ecfg := cfg.engineConfig()
	phone, err := mopeye.NewReal(mopeye.RealOptions{
		TunName:       cfg.tunName,
		Upstream:      cfg.upstream,
		Engine:        &ecfg,
		Workers:       cfg.workers,
		ReadBatch:     cfg.readBatch,
		ReadBatchAuto: cfg.readAuto,
	})
	if err != nil {
		return err
	}
	defer phone.Close()

	out := io.Writer(os.Stdout)
	if cfg.jsonl {
		out = os.Stderr
	}
	fmt.Fprintf(out, "mopeye on %s (mtu %d), upstream %s — route traffic into the device to measure it\n",
		phone.Device(), phone.MTU(), upstreamLabel(cfg.upstream))
	if cfg.duration > 0 {
		fmt.Fprintf(out, "monitoring for %v...\n", cfg.duration)
	} else {
		fmt.Fprintln(out, "monitoring until interrupted (ctrl-c)...")
	}

	// The dashboard works on the real plane unchanged: RealPhone
	// satisfies DashPhone, so the same subscriber-fed frames render
	// over kernel-TUN traffic.
	dashDone := make(chan struct{})
	close(dashDone)
	if cfg.dash {
		d, err := mopeye.NewDash(phone, mopeye.DashOptions{
			Interval: time.Second,
			Out:      out,
			Addr:     cfg.dashAddr,
		})
		if err != nil {
			return err
		}
		if d.Addr() != "" {
			fmt.Fprintf(out, "dash: http://%s (GET / text frame, GET /metrics exposition)\n", d.Addr())
		}
		dashDone = make(chan struct{})
		go func() {
			defer close(dashDone)
			_ = d.Run(context.Background())
		}()
	}

	// Poll-and-print: the real plane reports live without the simulated
	// Phone's subscription plumbing.
	stop := time.After(cfg.duration)
	if cfg.duration <= 0 {
		stop = nil
	}
	interrupted := interruptCh()
	seen := 0
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-interrupted:
			break loop
		case <-tick.C:
			recs := phone.Measurements()
			if cfg.follow {
				for _, m := range recs[seen:] {
					fmt.Fprintf(out, "%s %-4s %-24s -> %-21s %8.1f ms\n",
						m.At.Format("15:04:05.000"), m.Kind, m.App, m.Dst, m.RTT.Seconds()*1000)
				}
			}
			seen = len(recs)
		}
	}

	if cfg.dash {
		// Close ends the dashboard's stream; its final frame lands
		// before the closing report below. The deferred Close is then a
		// no-op.
		phone.Close()
		<-dashDone
	}

	if cfg.jsonl {
		if err := phone.ExportJSONL(os.Stdout); err != nil {
			return err
		}
	}
	st := phone.EngineStats()
	ts := phone.TunStats()
	fmt.Fprintf(out, "tun: %d packets in, %d out; engine: %d SYNs, %d established, %d failures\n",
		ts.PacketsOut, ts.PacketsIn, st.SYNs, st.Established, st.ConnectFailures)
	printAppReport(out, phone.TCPMeasurements(), phone.AppMedians(1))
	return nil
}

// interruptCh delivers one value on ctrl-c.
func interruptCh() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	return ch
}

func upstreamLabel(s string) string {
	if s == "" {
		return "direct"
	}
	return s
}

// runSim is the original mode: a simulated phone, network and
// workload. stdout/stderr are injected so the whole run is
// unit-testable.
func runSim(cfg config, stdout, stderr io.Writer) error {
	ecfg := cfg.engineConfig()
	servers := []mopeye.Server{
		{Domain: "social.example.com", RTTMillis: 61, Behaviour: mopeye.Chatty},
		{Domain: "video.example.com", RTTMillis: 32, Behaviour: mopeye.Chatty},
		{Domain: "chat.example.com", RTTMillis: 133, Behaviour: mopeye.Chatty},
		{Domain: "shop.example.com", RTTMillis: 59, Behaviour: mopeye.Chatty},
		{Domain: "maps.example.com", RTTMillis: 38, Behaviour: mopeye.Chatty},
	}
	phone, err := mopeye.New(mopeye.Options{
		Servers:        servers,
		Engine:         &ecfg,
		Workers:        cfg.workers,
		ReadBatch:      cfg.readBatch,
		ReadBatchAuto:  cfg.readAuto,
		RealisticCosts: cfg.realistic,
	})
	if err != nil {
		return err
	}
	defer phone.Close()

	// The human-readable report: stdout normally, stderr when stdout
	// carries the JSONL measurement stream.
	var out io.Writer = stdout
	if cfg.jsonl {
		out = stderr
		if _, err := phone.Attach(mopeye.NewJSONLSink(stdout)); err != nil {
			return err
		}
	}

	// The crowdsourcing upload path: a Collector batches measurements
	// and ships them to the collector server over HTTP, retries and
	// idempotency keys included — the deployed app's §4 loop.
	var transport *mopeye.HTTPTransport
	if cfg.upload != "" {
		transport = mopeye.NewHTTPTransport(cfg.upload, mopeye.HTTPTransportOptions{Token: cfg.token})
		collector := mopeye.NewCollector(mopeye.CollectorOptions{
			BatchSize: 64,
			Device:    cfg.device,
			Transport: transport,
		})
		if _, err := phone.Attach(collector); err != nil {
			return err
		}
	}
	// The live dashboard is an ordinary subscriber; its Run ends when
	// the phone closes, after the final frame.
	dashDone := make(chan struct{})
	close(dashDone)
	if cfg.dash {
		d, err := mopeye.NewDash(phone, mopeye.DashOptions{
			Interval: 500 * time.Millisecond,
			Out:      out,
			Addr:     cfg.dashAddr,
		})
		if err != nil {
			return err
		}
		if d.Addr() != "" {
			fmt.Fprintf(out, "dash: http://%s (GET / text frame, GET /metrics exposition)\n", d.Addr())
		}
		dashDone = make(chan struct{})
		go func() {
			defer close(dashDone)
			_ = d.Run(context.Background())
		}()
	}

	followDone := make(chan struct{})
	close(followDone)
	if cfg.follow {
		// Subscribe registers before returning, so every measurement
		// the workload produces is observed — no startup race.
		stream := phone.Subscribe(context.Background(), mopeye.Filter{})
		followDone = make(chan struct{})
		go func() {
			defer close(followDone)
			for m := range stream {
				fmt.Fprintf(out, "%s %-4s %-36s -> %-21s %8.1f ms\n",
					m.At.Format("15:04:05.000"), m.Kind, m.App, m.Dst, m.RTT.Seconds()*1000)
			}
		}()
	}

	pkgs := []string{
		"com.facebook.katana", "com.google.android.youtube",
		"com.whatsapp", "com.amazon.shopping", "com.google.android.apps.maps",
	}
	apps := cfg.apps
	if apps > len(pkgs) {
		apps = len(pkgs)
	}
	for i := 0; i < apps; i++ {
		phone.InstallApp(10001+i, pkgs[i])
	}

	fmt.Fprintf(out, "running %s engine (%d workers): %d apps x %d rounds x %d connections...\n",
		cfg.variant, cfg.workers, apps, cfg.pages, cfg.conns)
	start := time.Now()
	var wg sync.WaitGroup
	for a := 0; a < apps; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			dst := servers[a%len(servers)].Domain + ":443"
			uid := 10001 + a
			for p := 0; p < cfg.pages; p++ {
				var inner sync.WaitGroup
				for c := 0; c < cfg.conns; c++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						conn, err := phone.Connect(uid, dst)
						if err != nil {
							return
						}
						defer conn.Close()
						if _, err := conn.Write([]byte{0, 0, 8, 0}); err != nil {
							return
						}
						buf := make([]byte, 2048)
						_ = conn.ReadFull(buf)
					}()
				}
				inner.Wait()
			}
		}(a)
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)

	// Close ends the live streams (follow printer, JSONL sink) after
	// they have delivered every measurement; the snapshot accessors
	// below keep working on the closed phone.
	phone.Close()
	<-followDone
	<-dashDone
	if transport != nil {
		// Close drains the queued batches (the final flush included)
		// before the stats below are read.
		if err := transport.Close(); err != nil {
			fmt.Fprintf(out, "upload: %v\n", err)
		}
		ts := transport.Stats()
		fmt.Fprintf(out, "uploaded %d batches to %s (%d retries, %d dropped, %d failed)\n",
			ts.Uploaded, cfg.upload, ts.Retried, ts.Dropped, ts.Failed)
	}

	st := phone.EngineStats()
	fmt.Fprintf(out, "done in %v: %d SYNs, %d established, %d failures, %d pure ACKs discarded\n",
		time.Since(start).Round(time.Millisecond), st.SYNs, st.Established,
		st.ConnectFailures, st.PureACKs)
	fmt.Fprintf(out, "mapping: %d resolutions, %d parses, mitigation %.0f%%\n\n",
		st.Mapping.Resolutions, st.Mapping.Parses, st.Mapping.MitigationRate()*100)

	printAppReport(out, phone.TCPMeasurements(), phone.AppMedians(1))
	fmt.Fprintf(out, "\nDNS: %d measurements, median %.1f ms\n",
		len(phone.DNSMeasurements()), medianMS(phone.DNSMeasurements()))
	return nil
}

// printAppReport renders the per-app median view (Figure 1a).
func printAppReport(out io.Writer, tcp []mopeye.Measurement, meds map[string]float64) {
	fmt.Fprintln(out, "per-app view (median RTT, like Figure 1a):")
	names := make([]string, 0, len(meds))
	for n := range meds {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return meds[names[i]] < meds[names[j]] })
	for _, n := range names {
		count := 0
		for _, m := range tcp {
			if m.App == n {
				count++
			}
		}
		fmt.Fprintf(out, "  %-36s %6.1f ms  (%d measurements)\n", n, meds[n], count)
	}
}

func medianMS(recs []mopeye.Measurement) float64 {
	if len(recs) == 0 {
		return 0
	}
	ms := make([]float64, len(recs))
	for i, r := range recs {
		ms[i] = r.RTT.Seconds() * 1000
	}
	sort.Float64s(ms)
	return ms[len(ms)/2]
}
