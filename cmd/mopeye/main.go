// Command mopeye runs the MopEye engine over a simulated phone and
// workload and prints the opportunistic per-app measurements, like
// watching the app's all-app view (Figure 1a) fill up.
//
// With -follow each measurement is printed live as the engine records
// it (the streaming Subscribe API); with -jsonl the measurement
// stream goes to stdout as JSON Lines — one object per record, ready
// to pipe into jq or a collector — and the human-readable report
// moves to stderr. The two compose: `mopeye -follow -jsonl | jq .rtt_ns`.
//
// With -upload the phone runs the paper's §4 crowdsourcing loop for
// real: a Collector batches the measurements and ships them to a
// collector server (cmd/collectord) over HTTP with retry and
// idempotency-keyed dedup.
//
// Usage:
//
//	mopeye [-apps N] [-conns N] [-pages N] [-realistic] [-variant mopeye|toyvpn|haystack] [-workers N] [-readbatch N|auto] [-follow] [-jsonl] [-upload URL [-device D] [-token T]]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/baselines/haystack"
	"repro/internal/engine"
	"repro/mopeye"
)

func main() {
	apps := flag.Int("apps", 4, "number of simulated apps")
	pages := flag.Int("pages", 6, "workload rounds per app")
	conns := flag.Int("conns", 4, "concurrent connections per round")
	realistic := flag.Bool("realistic", true, "enable Android-like cost models")
	variant := flag.String("variant", "mopeye", "engine variant: mopeye, toyvpn or haystack")
	workers := flag.Int("workers", 1, "packet-processing workers (1 = paper-faithful MainWorker)")
	readbatch := flag.String("readbatch", "auto", "multi-worker read burst size: explicit N pins it (1 = batching off), 0 or auto self-tunes (AIMD up to the default ceiling of 64)")
	follow := flag.Bool("follow", false, "print each measurement live as the engine records it")
	jsonl := flag.Bool("jsonl", false, "stream measurements to stdout as JSON Lines (report moves to stderr)")
	upload := flag.String("upload", "", "collector server base URL (e.g. http://127.0.0.1:8477): upload measurement batches over HTTP as they accrue")
	device := flag.String("device", "cli-phone", "device stamp for uploaded records")
	token := flag.String("token", "", "collector bearer token")
	flag.Parse()

	// The -readbatch spelling: an explicit N pins the burst size, "0" or
	// "auto" selects the AIMD governor (ReadBatch stays 0, so the engine
	// default becomes the governor's ceiling). Either way the knob only
	// matters at -workers > 1.
	rbN, rbAuto := 0, false
	if *readbatch == "auto" || *readbatch == "0" {
		rbAuto = true
	} else {
		n, err := strconv.Atoi(*readbatch)
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "bad -readbatch %q (want N or auto)\n", *readbatch)
			os.Exit(2)
		}
		rbN = n
	}

	var cfg engine.Config
	switch *variant {
	case "mopeye":
		cfg = engine.Default()
	case "toyvpn":
		cfg = engine.ToyVpn()
	case "haystack":
		cfg = haystack.Config()
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	servers := []mopeye.Server{
		{Domain: "social.example.com", RTTMillis: 61, Behaviour: mopeye.Chatty},
		{Domain: "video.example.com", RTTMillis: 32, Behaviour: mopeye.Chatty},
		{Domain: "chat.example.com", RTTMillis: 133, Behaviour: mopeye.Chatty},
		{Domain: "shop.example.com", RTTMillis: 59, Behaviour: mopeye.Chatty},
		{Domain: "maps.example.com", RTTMillis: 38, Behaviour: mopeye.Chatty},
	}
	phone, err := mopeye.New(mopeye.Options{
		Servers:        servers,
		Engine:         &cfg,
		Workers:        *workers,
		ReadBatch:      rbN,
		ReadBatchAuto:  rbAuto,
		RealisticCosts: *realistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer phone.Close()

	// The human-readable report: stdout normally, stderr when stdout
	// carries the JSONL measurement stream.
	var out io.Writer = os.Stdout
	if *jsonl {
		out = os.Stderr
		if _, err := phone.Attach(mopeye.NewJSONLSink(os.Stdout)); err != nil {
			log.Fatal(err)
		}
	}

	// The crowdsourcing upload path: a Collector batches measurements
	// and ships them to the collector server over HTTP, retries and
	// idempotency keys included — the deployed app's §4 loop.
	var transport *mopeye.HTTPTransport
	if *upload != "" {
		transport = mopeye.NewHTTPTransport(*upload, mopeye.HTTPTransportOptions{Token: *token})
		collector := mopeye.NewCollector(mopeye.CollectorOptions{
			BatchSize: 64,
			Device:    *device,
			Transport: transport,
		})
		if _, err := phone.Attach(collector); err != nil {
			log.Fatal(err)
		}
	}
	followDone := make(chan struct{})
	close(followDone)
	if *follow {
		// Subscribe registers before returning, so every measurement
		// the workload produces is observed — no startup race.
		stream := phone.Subscribe(context.Background(), mopeye.Filter{})
		followDone = make(chan struct{})
		go func() {
			defer close(followDone)
			for m := range stream {
				fmt.Fprintf(out, "%s %-4s %-36s -> %-21s %8.1f ms\n",
					m.At.Format("15:04:05.000"), m.Kind, m.App, m.Dst, m.RTT.Seconds()*1000)
			}
		}()
	}

	pkgs := []string{
		"com.facebook.katana", "com.google.android.youtube",
		"com.whatsapp", "com.amazon.shopping", "com.google.android.apps.maps",
	}
	if *apps > len(pkgs) {
		*apps = len(pkgs)
	}
	for i := 0; i < *apps; i++ {
		phone.InstallApp(10001+i, pkgs[i])
	}

	fmt.Fprintf(out, "running %s engine (%d workers): %d apps x %d rounds x %d connections...\n",
		*variant, *workers, *apps, *pages, *conns)
	start := time.Now()
	var wg sync.WaitGroup
	for a := 0; a < *apps; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			dst := servers[a%len(servers)].Domain + ":443"
			uid := 10001 + a
			for p := 0; p < *pages; p++ {
				var inner sync.WaitGroup
				for c := 0; c < *conns; c++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						conn, err := phone.Connect(uid, dst)
						if err != nil {
							return
						}
						defer conn.Close()
						if _, err := conn.Write([]byte{0, 0, 8, 0}); err != nil {
							return
						}
						buf := make([]byte, 2048)
						_ = conn.ReadFull(buf)
					}()
				}
				inner.Wait()
			}
		}(a)
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)

	// Close ends the live streams (follow printer, JSONL sink) after
	// they have delivered every measurement; the snapshot accessors
	// below keep working on the closed phone.
	phone.Close()
	<-followDone
	if transport != nil {
		// Close drains the queued batches (the final flush included)
		// before the stats below are read.
		if err := transport.Close(); err != nil {
			fmt.Fprintf(out, "upload: %v\n", err)
		}
		ts := transport.Stats()
		fmt.Fprintf(out, "uploaded %d batches to %s (%d retries, %d dropped, %d failed)\n",
			ts.Uploaded, *upload, ts.Retried, ts.Dropped, ts.Failed)
	}

	st := phone.EngineStats()
	fmt.Fprintf(out, "done in %v: %d SYNs, %d established, %d failures, %d pure ACKs discarded\n",
		time.Since(start).Round(time.Millisecond), st.SYNs, st.Established,
		st.ConnectFailures, st.PureACKs)
	fmt.Fprintf(out, "mapping: %d resolutions, %d parses, mitigation %.0f%%\n\n",
		st.Mapping.Resolutions, st.Mapping.Parses, st.Mapping.MitigationRate()*100)

	fmt.Fprintln(out, "per-app view (median RTT, like Figure 1a):")
	meds := phone.AppMedians(1)
	names := make([]string, 0, len(meds))
	for n := range meds {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return meds[names[i]] < meds[names[j]] })
	for _, n := range names {
		count := 0
		for _, m := range phone.TCPMeasurements() {
			if m.App == n {
				count++
			}
		}
		fmt.Fprintf(out, "  %-36s %6.1f ms  (%d measurements)\n", n, meds[n], count)
	}
	fmt.Fprintf(out, "\nDNS: %d measurements, median %.1f ms\n",
		len(phone.DNSMeasurements()), medianMS(phone))
}

func medianMS(p *mopeye.Phone) float64 {
	recs := p.DNSMeasurements()
	if len(recs) == 0 {
		return 0
	}
	ms := make([]float64, len(recs))
	for i, r := range recs {
		ms[i] = r.RTT.Seconds() * 1000
	}
	sort.Float64s(ms)
	return ms[len(ms)/2]
}
