// Command mopeye runs the MopEye engine over a simulated phone and
// workload and prints the opportunistic per-app measurements, like
// watching the app's all-app view (Figure 1a) fill up.
//
// Usage:
//
//	mopeye [-apps N] [-conns N] [-pages N] [-realistic] [-variant mopeye|toyvpn|haystack] [-workers N] [-readbatch N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/baselines/haystack"
	"repro/internal/engine"
	"repro/mopeye"
)

func main() {
	apps := flag.Int("apps", 4, "number of simulated apps")
	pages := flag.Int("pages", 6, "workload rounds per app")
	conns := flag.Int("conns", 4, "concurrent connections per round")
	realistic := flag.Bool("realistic", true, "enable Android-like cost models")
	variant := flag.String("variant", "mopeye", "engine variant: mopeye, toyvpn or haystack")
	workers := flag.Int("workers", 1, "packet-processing workers (1 = paper-faithful MainWorker)")
	readbatch := flag.Int("readbatch", 0, "multi-worker read/write burst size (0 = default 64, 1 = batching off)")
	flag.Parse()

	var cfg engine.Config
	switch *variant {
	case "mopeye":
		cfg = engine.Default()
	case "toyvpn":
		cfg = engine.ToyVpn()
	case "haystack":
		cfg = haystack.Config()
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	servers := []mopeye.Server{
		{Domain: "social.example.com", RTTMillis: 61, Behaviour: mopeye.Chatty},
		{Domain: "video.example.com", RTTMillis: 32, Behaviour: mopeye.Chatty},
		{Domain: "chat.example.com", RTTMillis: 133, Behaviour: mopeye.Chatty},
		{Domain: "shop.example.com", RTTMillis: 59, Behaviour: mopeye.Chatty},
		{Domain: "maps.example.com", RTTMillis: 38, Behaviour: mopeye.Chatty},
	}
	phone, err := mopeye.New(mopeye.Options{
		Servers:        servers,
		Engine:         &cfg,
		Workers:        *workers,
		ReadBatch:      *readbatch,
		RealisticCosts: *realistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer phone.Close()

	pkgs := []string{
		"com.facebook.katana", "com.google.android.youtube",
		"com.whatsapp", "com.amazon.shopping", "com.google.android.apps.maps",
	}
	if *apps > len(pkgs) {
		*apps = len(pkgs)
	}
	for i := 0; i < *apps; i++ {
		phone.InstallApp(10001+i, pkgs[i])
	}

	fmt.Printf("running %s engine (%d workers): %d apps x %d rounds x %d connections...\n",
		*variant, *workers, *apps, *pages, *conns)
	start := time.Now()
	var wg sync.WaitGroup
	for a := 0; a < *apps; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			dst := servers[a%len(servers)].Domain + ":443"
			uid := 10001 + a
			for p := 0; p < *pages; p++ {
				var inner sync.WaitGroup
				for c := 0; c < *conns; c++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						conn, err := phone.Connect(uid, dst)
						if err != nil {
							return
						}
						defer conn.Close()
						if _, err := conn.Write([]byte{0, 0, 8, 0}); err != nil {
							return
						}
						buf := make([]byte, 2048)
						_ = conn.ReadFull(buf)
					}()
				}
				inner.Wait()
			}
		}(a)
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)

	st := phone.EngineStats()
	fmt.Printf("done in %v: %d SYNs, %d established, %d failures, %d pure ACKs discarded\n",
		time.Since(start).Round(time.Millisecond), st.SYNs, st.Established,
		st.ConnectFailures, st.PureACKs)
	fmt.Printf("mapping: %d resolutions, %d parses, mitigation %.0f%%\n\n",
		st.Mapping.Resolutions, st.Mapping.Parses, st.Mapping.MitigationRate()*100)

	fmt.Println("per-app view (median RTT, like Figure 1a):")
	meds := phone.AppMedians(1)
	names := make([]string, 0, len(meds))
	for n := range meds {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return meds[names[i]] < meds[names[j]] })
	for _, n := range names {
		count := 0
		for _, m := range phone.TCPMeasurements() {
			if m.App == n {
				count++
			}
		}
		fmt.Printf("  %-36s %6.1f ms  (%d measurements)\n", n, meds[n], count)
	}
	fmt.Printf("\nDNS: %d measurements, median %.1f ms\n",
		len(phone.DNSMeasurements()), medianMS(phone))
}

func medianMS(p *mopeye.Phone) float64 {
	recs := p.DNSMeasurements()
	if len(recs) == 0 {
		return 0
	}
	ms := make([]float64, len(recs))
	for i, r := range recs {
		ms[i] = r.RTT.Seconds() * 1000
	}
	sort.Float64s(ms)
	return ms[len(ms)/2]
}
