package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.tun != "sim" || c.tunName != "" || c.upstream != "" {
		t.Fatalf("defaults: %+v", c)
	}
	if !c.readAuto || c.readBatch != 0 {
		t.Fatalf("readbatch default should be auto: %+v", c)
	}
	if c.variant != "mopeye" || c.workers != 1 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestParseFlagsRealPlane(t *testing.T) {
	c, err := parseFlags([]string{
		"-tun", "real", "-tun-name", "mopeye0",
		"-upstream", "socks5://user:pw@127.0.0.1:1080",
		"-duration", "5s", "-workers", "4", "-readbatch", "16",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.tun != "real" || c.tunName != "mopeye0" {
		t.Fatalf("parsed: %+v", c)
	}
	if c.upstream != "socks5://user:pw@127.0.0.1:1080" {
		t.Fatalf("upstream: %q", c.upstream)
	}
	if c.duration != 5*time.Second || c.workers != 4 || c.readBatch != 16 || c.readAuto {
		t.Fatalf("parsed: %+v", c)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-tun", "bogus"}, "-tun"},
		{[]string{"-tun-name", "x0"}, "-tun-name needs -tun real"},
		{[]string{"-upstream", "socks5://1.2.3.4:1080"}, "-upstream needs -tun real"},
		{[]string{"-tun", "real", "-upstream", "http://1.2.3.4:8080"}, "unsupported scheme"},
		{[]string{"-tun", "real", "-upstream", "socks5://hostonly"}, "host:port"},
		{[]string{"-readbatch", "-3"}, "-readbatch"},
		{[]string{"-readbatch", "lots"}, "-readbatch"},
		{[]string{"-variant", "vpnservice"}, "-variant"},
		{[]string{"-dash", "-follow"}, "-dash"},
		{[]string{"-dash", "-jsonl"}, "-dash"},
		{[]string{"-dash-addr", "127.0.0.1:0", "-follow"}, "-dash"},
	}
	for _, c := range cases {
		_, err := parseFlags(c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseFlags(%v) err = %v, want containing %q", c.args, err, c.want)
		}
	}
}

func TestParseFlagsDashAddrImpliesDash(t *testing.T) {
	c, err := parseFlags([]string{"-dash-addr", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.dash || c.dashAddr != "127.0.0.1:0" {
		t.Fatalf("parsed: %+v", c)
	}
	// Plain -dash stands alone too.
	c, err = parseFlags([]string{"-dash"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.dash || c.dashAddr != "" {
		t.Fatalf("parsed: %+v", c)
	}
}

func TestParseFlagsUpstreamDirectSpelling(t *testing.T) {
	// "direct" is valid with the real plane and means the default.
	c, err := parseFlags([]string{"-tun", "real", "-upstream", "direct"})
	if err != nil {
		t.Fatal(err)
	}
	if c.upstream != "direct" {
		t.Fatalf("upstream: %q", c.upstream)
	}
}
