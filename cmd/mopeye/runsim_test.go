package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/crowd"
)

// syncWriter guards a buffer against the concurrent writers a run
// fans out (follow printer, dash renderer, main-line report).
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestRunSimFollowJSONLUpload drives the full simulated-plane run —
// live follow printer, JSONL stream on stdout, crowdsourced upload to
// a real collector server — and checks every surface it writes to.
func TestRunSimFollowJSONLUpload(t *testing.T) {
	srv, err := crowd.NewServer(crowd.ServerOptions{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg, err := parseFlags([]string{
		"-apps", "2", "-pages", "1", "-conns", "2",
		"-follow", "-jsonl", "-upload", ts.URL, "-device", "test-phone",
	})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	var stdout, stderr syncWriter
	if err := runSim(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("runSim: %v", err)
	}

	// stdout carries the JSONL measurement stream.
	if !strings.Contains(stdout.String(), `"rtt_ns"`) {
		t.Fatalf("stdout missing JSONL records:\n%s", stdout.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !strings.HasPrefix(line, "{") {
			t.Fatalf("non-JSONL line on stdout: %q", line)
		}
	}

	// The human report (and the follow printer) moved to stderr.
	for _, want := range []string{
		"running mopeye engine", "per-app view", "com.facebook.katana",
		"uploaded", "DNS:",
	} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("stderr missing %q:\n%s", want, stderr.String())
		}
	}

	// The collector actually received the uploaded records.
	if got := srv.Stats().Records; got == 0 {
		t.Fatal("collector received no records")
	}
}

// TestRunSimDash exercises the -dash-addr wiring end to end: the run
// announces the dashboard URL and completes cleanly with the dash
// subscriber attached.
func TestRunSimDash(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-apps", "1", "-pages", "1", "-conns", "1",
		"-dash-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	var stdout, stderr syncWriter
	if err := runSim(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("runSim: %v", err)
	}
	if !strings.Contains(stdout.String(), "dash: http://") {
		t.Fatalf("stdout missing dash URL:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "per-app view") {
		t.Fatalf("stdout missing report:\n%s", stdout.String())
	}
}
