// Command crowdstudy regenerates the paper's crowdsourcing analyses
// (§4.2): dataset statistics, Figures 6–11, Tables 5–6 and the two
// case studies, from a generated dataset calibrated to the published
// marginals.
//
// Usage:
//
//	crowdstudy [-scale F] [-seed N] [-section all|stats|contrib|geo|apps|dns|isps|whatsapp|jio]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/mopeye"
)

func main() {
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 = the paper's 5.25M measurements)")
	seed := flag.Int64("seed", 2016, "generator seed")
	section := flag.String("section", "all", "which analysis to print")
	dump := flag.String("dump", "", "also write the raw records as CSV to this file")
	flag.Parse()

	study := mopeye.NewStudy(*scale, *seed)
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := study.ExportCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote raw records to %s\n", *dump)
	}
	switch *section {
	case "all":
		fmt.Println(study.ReportAll())
	case "stats":
		fmt.Println(study.Summary())
	case "contrib":
		fmt.Println(study.ReportContributions())
	case "geo":
		fmt.Println(study.ReportCountries())
	case "apps":
		fmt.Println(study.ReportAppRTT())
		fmt.Println(study.ReportApps())
	case "dns":
		fmt.Println(study.ReportDNS())
	case "isps":
		fmt.Println(study.ReportISPs())
	case "whatsapp":
		fmt.Println(study.ReportCaseWhatsapp())
	case "jio":
		fmt.Println(study.ReportCaseJio())
	default:
		fmt.Fprintf(os.Stderr, "unknown section %q\n", *section)
		os.Exit(2)
	}
}
