// Command crowdstudy runs the paper's crowdsourcing analyses (§4.2):
// dataset statistics, Figures 6–11, Tables 5–6 and the two case
// studies. Three dataset sources share the pipeline:
//
//   - default: the statistical generator calibrated to the published
//     marginals (-scale/-seed),
//   - -serve URL: a live collectord — the records it has accepted so
//     far are fetched over HTTP (GET /v1/records),
//   - -spool DIR: a collectord's durable spool directory, read
//     offline with the same dedup the server applies.
//
// Usage:
//
//	crowdstudy [-scale F] [-seed N] [-serve URL | -spool DIR] [-token T] [-section all|stats|contrib|geo|apps|dns|isps|whatsapp|jio]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/crowd"
	"repro/internal/measure"
	"repro/mopeye"
)

func main() {
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 = the paper's 5.25M measurements)")
	seed := flag.Int64("seed", 2016, "generator seed")
	section := flag.String("section", "all", "which analysis to print")
	dump := flag.String("dump", "", "also write the raw records as CSV to this file")
	serve := flag.String("serve", "", "analyse a live collectord at this base URL instead of generating")
	spool := flag.String("spool", "", "analyse a collectord spool directory instead of generating")
	token := flag.String("token", "", "collectord bearer token (with -serve)")
	flag.Parse()

	study, err := buildStudy(*scale, *seed, *serve, *spool, *token)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := study.ExportCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote raw records to %s\n", *dump)
	}
	switch *section {
	case "all":
		fmt.Println(study.ReportAll())
	case "stats":
		fmt.Println(study.Summary())
	case "contrib":
		fmt.Println(study.ReportContributions())
	case "geo":
		fmt.Println(study.ReportCountries())
	case "apps":
		fmt.Println(study.ReportAppRTT())
		fmt.Println(study.ReportApps())
	case "dns":
		fmt.Println(study.ReportDNS())
	case "isps":
		fmt.Println(study.ReportISPs())
	case "whatsapp":
		fmt.Println(study.ReportCaseWhatsapp())
	case "jio":
		fmt.Println(study.ReportCaseJio())
	default:
		fmt.Fprintf(os.Stderr, "unknown section %q\n", *section)
		os.Exit(2)
	}
}

// buildStudy assembles the dataset from whichever source was selected.
func buildStudy(scale float64, seed int64, serve, spool, token string) (*mopeye.Study, error) {
	switch {
	case serve != "" && spool != "":
		return nil, fmt.Errorf("crowdstudy: -serve and -spool are mutually exclusive")
	case serve != "":
		recs, err := fetchRecords(serve, token)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "fetched %d records from %s\n", len(recs), serve)
		return mopeye.NewStudyFrom(recs), nil
	case spool != "":
		recs, err := crowd.ReadSpool(spool)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "replayed %d records from spool %s\n", len(recs), spool)
		return mopeye.NewStudyFrom(recs), nil
	default:
		return mopeye.NewStudy(scale, seed), nil
	}
}

// fetchRecords pulls the accepted dataset from a live collectord.
func fetchRecords(base, token string) ([]measure.Record, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/records", nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("crowdstudy: %s answered %s", base, resp.Status)
	}
	return measure.ReadJSONL(resp.Body)
}
