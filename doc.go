// Package repro is a from-scratch Go reproduction of "MopEye:
// Opportunistic Monitoring of Per-app Mobile Network Performance"
// (Wu, Chang, Li, Cheng, Gao — USENIX ATC 2017).
//
// The public API lives in package repro/mopeye; the engine and its
// substrates live under internal/. See README.md for the architecture,
// DESIGN.md for the system inventory and substitution decisions, and
// EXPERIMENTS.md for paper-vs-measured results of every table and
// figure.
package repro
